"""Figure 8 — efficiency and scalability of single-task assignment.

(a) running time vs m (Approx vs Approx*);
(b) running time vs number of workers;
(c) time breakdown by component (worker-cost retrieval, heuristic
    calculation, k-NN search, tree construction) via operation counts;
(d) pruning ratios vs m per distribution (plus the "real" stand-in);
(e) tree construction time vs the fanout knob ts;
(f) running time vs task distribution;
(g) effect of the interpolation parameter k;
(h) effect of the budget per distribution.

Scale note: the paper runs Approx up to m=1000 where it needs *hours*
(1e7-1e8 ms in Fig. 8a); the naive solver's O(m^3 log m) makes that
pointless to replay in Python, so the head-to-head uses m<=140 and
Approx* alone extends to the paper's m range.  The claims checked are
the paper's shapes: Approx* wins by a growing factor, stays stable
across |W| and distributions, and prunes >=70% of candidates at paper
scale.
"""

from __future__ import annotations

import time

from repro.bench import Reporter
from repro.core.greedy import IndexedSingleTaskGreedy, SingleTaskGreedy
from repro.core.instrumentation import OpCounters
from repro.core.tree_index import TreeIndex
from repro.core.evaluator import TemporalQualityEvaluator
from repro.engine.costs import SingleTaskCostTable
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution

ALL_DISTRIBUTIONS = [
    Distribution.UNIFORM,
    Distribution.GAUSSIAN,
    Distribution.ZIPFIAN,
    Distribution.REAL,
]


def _instance(m, workers=1000, distribution=Distribution.UNIFORM, seed=3):
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=1,
            num_slots=m,
            num_workers=workers,
            distribution=distribution,
            seed=seed,
        )
    )
    costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
    return scenario, costs


def _timed(solver):
    start = time.perf_counter()
    result = solver.solve()
    return time.perf_counter() - start, result


def test_fig8a_time_vs_m(run_once):
    reporter = Reporter("fig8a", "Single-task time vs m (Approx vs Approx*)")
    reporter.note("head-to-head at m<=140 (naive Approx is O(m^3 log m)); Approx* extends to paper scale")
    reporter.header("m", "Approx_s", "ApproxStar_s", "speedup")

    def work():
        rows = []
        for m in (60, 100, 140):
            scenario, costs = _instance(m)
            naive_t, naive = _timed(
                SingleTaskGreedy(scenario.single_task, costs, budget=scenario.budget,
                                 strategy="full")
            )
            star_t, star = _timed(
                IndexedSingleTaskGreedy(scenario.single_task, costs, budget=scenario.budget)
            )
            assert naive.assignment.plan_signature() == star.assignment.plan_signature()
            rows.append((m, naive_t, star_t))
        for m in (300, 500, 800):
            scenario, costs = _instance(m)
            star_t, _ = _timed(
                IndexedSingleTaskGreedy(scenario.single_task, costs, budget=scenario.budget)
            )
            rows.append((m, None, star_t))
        return rows

    rows = run_once(work)
    speedups = []
    for m, naive_t, star_t in rows:
        speedup = (naive_t / star_t) if naive_t else float("nan")
        reporter.row(m, naive_t if naive_t else "-", star_t, speedup)
        if naive_t:
            speedups.append(speedup)
    assert speedups[-1] > speedups[0], "Approx* advantage grows with m"
    assert speedups[-1] > 3.0
    reporter.chart(
        [m for m, _, _ in rows],
        {"ApproxStar_s": [t for _, _, t in rows]},
        log=True,
    )
    reporter.close()


def test_fig8b_time_vs_workers(run_once):
    reporter = Reporter("fig8b", "Single-task time vs number of workers")
    reporter.note("paper-scale worker counts; m=200; Approx* (Approx at this m is impractical)")
    reporter.header("workers", "ApproxStar_s")

    def work():
        rows = []
        for workers in (5000, 7500, 10000):
            scenario, costs = _instance(200, workers=workers)
            star_t, _ = _timed(
                IndexedSingleTaskGreedy(scenario.single_task, costs, budget=scenario.budget)
            )
            rows.append((workers, star_t))
        return rows

    rows = run_once(work)
    for workers, star_t in rows:
        reporter.row(workers, star_t)
    # The paper: "time cost keeps stable and increases only slightly".
    times = [t for _, t in rows]
    assert max(times) <= 4.0 * min(times)
    reporter.close()


def test_fig8c_time_breakdown(run_once):
    reporter = Reporter("fig8c", "Component breakdown (operation counts)")
    reporter.note("counts of primitive operations per component, Approx vs Approx* at m=140")
    reporter.header("solver", "worker_cost_retrieval", "heuristic_calc(slot_evals)",
                    "find_knn(queries)", "tree_construction(updates)")

    def work():
        m = 140
        scenario, costs = _instance(m)
        naive_counters = OpCounters()
        SingleTaskGreedy(
            scenario.single_task, costs, budget=scenario.budget, strategy="full",
            counters=naive_counters,
        ).solve()
        star_counters = OpCounters()
        IndexedSingleTaskGreedy(
            scenario.single_task, costs, budget=scenario.budget, counters=star_counters
        ).solve()
        return naive_counters, star_counters

    naive, star = run_once(work)
    reporter.row("Approx", naive.worker_cost_lookups, naive.slot_evaluations,
                 naive.knn_queries, naive.tree_node_updates)
    reporter.row("Approx*", star.worker_cost_lookups, star.slot_evaluations,
                 star.knn_queries, star.tree_node_updates)
    # Paper: the k-NN/interpolation work drops by orders of magnitude.
    assert star.slot_evaluations * 10 < naive.slot_evaluations
    assert star.knn_queries * 5 < naive.knn_queries
    reporter.close()


def test_fig8d_pruning_ratios(run_once):
    reporter = Reporter("fig8d", "Pruning ratio vs m per distribution")
    reporter.header("distribution", "m", "pruning_ratio_pct")

    def work():
        rows = []
        for distribution in ALL_DISTRIBUTIONS:
            for m in (150, 300, 500):
                scenario, costs = _instance(m, distribution=distribution)
                counters = OpCounters()
                IndexedSingleTaskGreedy(
                    scenario.single_task, costs, budget=scenario.budget, counters=counters
                ).solve()
                rows.append((distribution.value, m, 100.0 * counters.pruning_ratio))
        return rows

    for distribution, m, ratio in run_once(work):
        reporter.row(distribution, m, ratio)
        if m >= 300:
            assert ratio >= 60.0, f"{distribution} m={m}: pruning too weak ({ratio:.1f}%)"
    reporter.close()


def test_fig8e_tree_construction_vs_ts(run_once):
    reporter = Reporter("fig8e", "Tree construction time vs ts")
    reporter.header("ts", "build_time_ms", "node_count")

    def work():
        m = 1000
        scenario, costs = _instance(m)
        rows = []
        for ts in (2, 3, 4, 6, 8, 10):
            ev = TemporalQualityEvaluator(m, 3)
            start = time.perf_counter()
            index = TreeIndex(ev, costs, ts=ts)
            elapsed = (time.perf_counter() - start) * 1000.0
            rows.append((ts, elapsed, index.node_count))
        return rows

    rows = run_once(work)
    for ts, elapsed, nodes in rows:
        reporter.row(ts, elapsed, nodes)
    # Larger ts -> fewer nodes; the build gets cheaper overall.
    nodes = [n for _, _, n in rows]
    assert nodes == sorted(nodes, reverse=True)
    assert rows[-1][1] < rows[0][1] * 1.5
    reporter.close()


def test_fig8f_time_vs_distribution(run_once):
    reporter = Reporter("fig8f", "Single-task time vs task distribution")
    reporter.header(
        "distribution", "Approx_s(m=100)", "ApproxStar_s(m=100)", "ApproxStar_s(m=300)"
    )

    def work():
        rows = []
        for distribution in (Distribution.UNIFORM, Distribution.GAUSSIAN, Distribution.ZIPFIAN):
            scenario_small, costs_small = _instance(100, distribution=distribution)
            naive_t, _ = _timed(
                SingleTaskGreedy(
                    scenario_small.single_task, costs_small,
                    budget=scenario_small.budget, strategy="full",
                )
            )
            star_small_t, _ = _timed(
                IndexedSingleTaskGreedy(
                    scenario_small.single_task, costs_small, budget=scenario_small.budget
                )
            )
            scenario_big, costs_big = _instance(300, distribution=distribution)
            star_t, _ = _timed(
                IndexedSingleTaskGreedy(
                    scenario_big.single_task, costs_big, budget=scenario_big.budget
                )
            )
            rows.append((distribution.value, naive_t, star_small_t, star_t))
        return rows

    rows = run_once(work)
    for distribution, naive_t, star_small_t, star_t in rows:
        reporter.row(distribution, naive_t, star_small_t, star_t)
    # Approx* dominates Approx at the same m, across distributions.
    for _, naive_t, star_small_t, _ in rows:
        assert star_small_t < naive_t
    # And Approx*'s time stays relatively stable across distributions.
    stars = [s for _, _, _, s in rows]
    assert max(stars) <= 3.0 * min(stars)
    reporter.close()


def test_fig8g_effect_of_k(run_once):
    reporter = Reporter("fig8g", "Effect of the interpolation parameter k")
    reporter.header("k", "ApproxStar_s(m=300)")

    def work():
        rows = []
        for k in (1, 3, 5, 7, 10):
            scenario, costs = _instance(300)
            star_t, _ = _timed(
                IndexedSingleTaskGreedy(
                    scenario.single_task, costs, k=k, budget=scenario.budget
                )
            )
            rows.append((k, star_t))
        return rows

    rows = run_once(work)
    for k, star_t in rows:
        reporter.row(k, star_t)
    # Paper: time increases with k (bigger k-NN refinement cost).
    assert rows[-1][1] > rows[0][1]
    reporter.close()


def test_fig8i_lazy_gain_evaluations(run_once):
    """CELF lazy argmax vs enumerated search on the fig8 scenarios.

    Deterministic (op-count) gate: the lazy search must cut candidate
    heuristic evaluations to <= 30% of the enumerated argmax while
    producing the byte-identical plan.
    """
    reporter = Reporter("fig8i", "Lazy (CELF) vs enumerated candidate search")
    reporter.note("identical plans asserted; gate is on gain_evaluations, not time")
    reporter.header("m", "enum_gain_evals", "lazy_gain_evals", "ratio_pct")

    def work():
        rows = []
        for m in (60, 100, 140):
            scenario, costs = _instance(m)
            enum_counters = OpCounters()
            enum_result = SingleTaskGreedy(
                scenario.single_task, costs, budget=scenario.budget,
                strategy="local", counters=enum_counters,
            ).solve()
            lazy_counters = OpCounters()
            lazy_result = SingleTaskGreedy(
                scenario.single_task, costs, budget=scenario.budget,
                strategy="local", search="lazy", counters=lazy_counters,
            ).solve()
            assert (
                enum_result.assignment.plan_signature()
                == lazy_result.assignment.plan_signature()
            )
            rows.append(
                (m, enum_counters.gain_evaluations, lazy_counters.gain_evaluations)
            )
        return rows

    for m, enum_evals, lazy_evals in run_once(work):
        ratio = lazy_evals / enum_evals
        reporter.row(m, enum_evals, lazy_evals, 100.0 * ratio)
        assert ratio <= 0.30, f"m={m}: lazy ratio {ratio:.3f} exceeds 0.30"
    reporter.close()


def test_fig8h_effect_of_budget(run_once):
    reporter = Reporter("fig8h", "Effect of the budget per distribution")
    reporter.note("fractions {0.125, 0.25, 0.5} of the full-task cost stand in for $50/$100/$200")
    reporter.header("distribution", "budget_fraction", "ApproxStar_s(m=300)", "virtual_cost")

    def work():
        rows = []
        for distribution in ALL_DISTRIBUTIONS:
            scenario, costs = _instance(300, distribution=distribution)
            for fraction in (0.125, 0.25, 0.5):
                budget = fraction * costs.total_cost
                counters = OpCounters()
                star_t, _ = _timed(
                    IndexedSingleTaskGreedy(
                        scenario.single_task, costs, budget=budget, counters=counters
                    )
                )
                rows.append((distribution.value, fraction, star_t, counters.virtual_cost()))
        return rows

    rows = run_once(work)
    by_distribution: dict[str, list[float]] = {}
    for distribution, fraction, star_t, work_done in rows:
        reporter.row(distribution, fraction, star_t, work_done)
        by_distribution.setdefault(distribution, []).append(work_done)
    # Paper: cost increases moderately with b (more executed subtasks).
    # Asserted on the deterministic operation-count work measure — the
    # wall-clock column is reported but too noisy to gate on (the
    # fractions differ by only ~15% in solve time).
    for series in by_distribution.values():
        assert series[-1] > series[0]
    reporter.close()
