"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures — these isolate *why* the system is built the way it
is:

* ``abl1`` — where Approx*'s speedup comes from: the k-NN locality
  (affected-window gains) vs the tree index's best-first pruning.
* ``abl2`` — sensitivity of Approx* solve time to the fanout knob ts.
* ``abl3`` — the STCC lazy (CELF) solver vs the exhaustive SApprox:
  same plan, order-of-magnitude fewer gain evaluations.
* ``abl4`` — reliability-aware vs reliability-blind planning: ignoring
  worker reliability while planning loses realized quality.
* ``abl5`` — worker-index backend: uniform grid vs k-d tree under the
  multi-task consumption workload.
"""

from __future__ import annotations

import time

from repro.bench import Reporter
from repro.core.greedy import IndexedSingleTaskGreedy, SingleTaskGreedy
from repro.core.instrumentation import OpCounters
from repro.core.quality import task_quality
from repro.core.spatiotemporal import LazySpatioTemporalGreedy, SpatioTemporalGreedy
from repro.engine.costs import SingleTaskCostTable
from repro.engine.registry import WorkerRegistry
from repro.multi.msqm import SumQualityGreedy
from repro.workloads.scenario import ScenarioConfig, build_scenario


def _single_instance(m=140, workers=800, seed=3, reliability_range=(1.0, 1.0)):
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=1,
            num_slots=m,
            num_workers=workers,
            seed=seed,
            reliability_range=reliability_range,
        )
    )
    costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
    return scenario, costs


def _timed(solver):
    start = time.perf_counter()
    result = solver.solve()
    return time.perf_counter() - start, result


def test_abl1_locality_vs_pruning(run_once):
    reporter = Reporter("abl1", "Approx* decomposition: locality vs pruning")
    reporter.header("variant", "time_s", "slot_evals")

    def work():
        scenario, costs = _single_instance()
        task, budget = scenario.single_task, scenario.budget
        rows = []
        for label, factory in (
            ("full-rescan (Approx)", lambda c: SingleTaskGreedy(
                task, costs, budget=budget, strategy="full", counters=c)),
            ("+ locality (affected windows)", lambda c: SingleTaskGreedy(
                task, costs, budget=budget, strategy="local", counters=c)),
            ("+ tree index & pruning (Approx*)", lambda c: IndexedSingleTaskGreedy(
                task, costs, budget=budget, counters=c)),
        ):
            counters = OpCounters()
            elapsed, result = _timed(factory(counters))
            rows.append((label, elapsed, counters.slot_evaluations, result))
        # All three variants must agree on the plan.
        signatures = {r[3].assignment.plan_signature() for r in rows}
        assert len(signatures) == 1
        # Counter-parity audit: the NumPy kernel does the same logical
        # work as the scalar path, so its OpCounters must be identical
        # field for field (and the plan byte-identical).
        np_counters = OpCounters()
        np_result = SingleTaskGreedy(
            task, costs, budget=budget, strategy="local",
            backend="numpy", counters=np_counters,
        ).solve()
        assert np_result.assignment.plan_signature() in signatures
        py_counters = next(
            r[3].counters for r in rows
            if r[0] == "+ locality (affected windows)"
        )
        assert np_counters == py_counters
        return [(label, t, evals) for label, t, evals, _ in rows]

    rows = run_once(work)
    for label, elapsed, evals in rows:
        reporter.row(label, elapsed, evals)
    times = [t for _, t, _ in rows]
    assert times[0] > times[1] > times[2], "each layer should help"
    reporter.close()


def test_abl2_ts_sensitivity(run_once):
    reporter = Reporter("abl2", "Approx* solve time vs fanout knob ts")
    reporter.header("ts", "time_s", "pruning_pct")

    def work():
        rows = []
        reference = None
        for ts in (1, 2, 4, 8, 16, 32):
            scenario, costs = _single_instance(m=300)
            counters = OpCounters()
            elapsed, result = _timed(
                IndexedSingleTaskGreedy(
                    scenario.single_task, costs, budget=scenario.budget,
                    ts=ts, counters=counters,
                )
            )
            if reference is None:
                reference = result.assignment.plan_signature()
            else:
                assert result.assignment.plan_signature() == reference
            rows.append((ts, elapsed, 100.0 * counters.pruning_ratio))
        return rows

    for ts, elapsed, pruning in run_once(work):
        reporter.row(ts, elapsed, pruning)
    reporter.note("ts trades pruning granularity against per-leaf enumeration; plans are identical")
    reporter.close()


def test_abl3_stcc_lazy_vs_exhaustive(run_once):
    reporter = Reporter("abl3", "STCC: lazy (CELF) SApprox* vs exhaustive SApprox")
    reporter.header("variant", "time_s", "gain_evals", "qsum")

    def work():
        scenario = build_scenario(
            ScenarioConfig(num_tasks=12, num_slots=15, num_workers=200, seed=9)
        )
        budget = scenario.budget * 12
        naive_counters = OpCounters()
        naive_t, naive = _timed(
            SpatioTemporalGreedy(
                scenario.tasks, scenario.fresh_registry(), scenario.bbox,
                budget=budget, counters=naive_counters,
            )
        )
        lazy_counters = OpCounters()
        lazy_t, lazy = _timed(
            LazySpatioTemporalGreedy(
                scenario.tasks, scenario.fresh_registry(), scenario.bbox,
                budget=budget, counters=lazy_counters,
            )
        )
        assert naive.plan_signature() == lazy.plan_signature()
        return [
            ("SApprox (exhaustive)", naive_t, naive_counters.gain_evaluations,
             naive.sum_quality),
            ("SApprox* (lazy)", lazy_t, lazy_counters.gain_evaluations,
             lazy.sum_quality),
        ]

    rows = run_once(work)
    for row in rows:
        reporter.row(*row)
    assert rows[1][1] < rows[0][1], "lazy variant should be faster"
    assert rows[1][2] * 3 < rows[0][2], "lazy variant evaluates far fewer gains"
    reporter.close()


def test_abl4_reliability_aware_vs_blind(run_once):
    reporter = Reporter("abl4", "Reliability-aware vs reliability-blind planning")
    reporter.note("realized quality always uses the true worker lambdas (Eq. 4-5)")
    reporter.header("reliability_range", "aware_quality", "blind_quality", "gain_pct")

    class BlindCosts:
        """Cost adapter that hides worker reliability from the planner."""

        def __init__(self, costs):
            self._costs = costs

        def cost(self, slot):
            return self._costs.cost(slot)

        def reliability(self, slot):
            return 1.0  # the blind planner assumes perfect workers

        def offer(self, slot):
            return self._costs.offer(slot)

    def realized_quality(scenario, costs, assignment):
        executed = {r.slot: costs.reliability(r.slot) for r in assignment}
        return task_quality(scenario.single_task.num_slots, 3, executed)

    def work():
        rows = []
        for lo in (0.8, 0.5, 0.2):
            aware_vals, blind_vals = [], []
            for seed in (3, 4, 5, 6):
                scenario, costs = _single_instance(
                    m=60, seed=seed, reliability_range=(lo, 1.0)
                )
                budget = scenario.budget
                aware = IndexedSingleTaskGreedy(
                    scenario.single_task, costs, budget=budget
                ).solve()
                blind = IndexedSingleTaskGreedy(
                    scenario.single_task, BlindCosts(costs), budget=budget
                ).solve()
                aware_vals.append(realized_quality(scenario, costs, aware.assignment))
                blind_vals.append(realized_quality(scenario, costs, blind.assignment))
            aware_avg = sum(aware_vals) / len(aware_vals)
            blind_avg = sum(blind_vals) / len(blind_vals)
            rows.append(
                ((lo, 1.0), aware_avg, blind_avg,
                 100.0 * (aware_avg - blind_avg) / blind_avg)
            )
        return rows

    rows = run_once(work)
    for rng, aware, blind, gain in rows:
        reporter.row(str(rng), aware, blind, gain)
        assert aware >= blind - 1e-9, "awareness should never hurt on average"
    # The advantage grows as reliabilities get more heterogeneous.
    assert rows[-1][3] >= rows[0][3] - 0.5
    reporter.close()


def test_abl5_worker_index_backend(run_once):
    reporter = Reporter("abl5", "Worker-index backend: grid vs k-d tree")
    reporter.header("backend", "time_s", "qsum")

    def work():
        scenario = build_scenario(
            ScenarioConfig(num_tasks=12, num_slots=40, num_workers=2000, seed=7)
        )
        budget = scenario.budget * 12
        rows = []
        plans = []
        for backend in ("grid", "kdtree"):
            registry = WorkerRegistry(scenario.pool, scenario.bbox, backend=backend)
            elapsed, result = _timed(
                SumQualityGreedy(scenario.tasks, registry, budget=budget)
            )
            rows.append((backend, elapsed, result.sum_quality))
            plans.append(result.plan_signature())
        assert plans[0] == plans[1], "backends must be semantically identical"
        return rows

    for backend, elapsed, qsum in run_once(work):
        reporter.row(backend, elapsed, qsum)
    reporter.close()
