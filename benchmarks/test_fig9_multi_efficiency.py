"""Figure 9 — efficiency and scalability of multi-task assignment.

(a) time vs number of cores (task-level vs group-level vs serial);
(b) time and worker-conflict counts vs task distribution;
(c) conflicts vs number of tasks;
(d) time vs number of tasks (task-level vs group-level);
(e) time vs m per distribution;
(f) time vs cores with and without priority scheduling;
(g) MMQM time vs number of tasks (Approx vs Approx*);
(h) MMQM time vs m (Approx vs Approx*).

Parallel timings are *virtual-clock* durations from the deterministic
multi-core simulator (see DESIGN.md: CPython's GIL rules out real
CPU-parallel speedups); serial MMQM comparisons use wall-clock time.
Scales are reduced from the paper's |T|=100-500, m=300-1000 to keep a
full bench run in minutes; the claims checked are the paper's shapes.
"""

from __future__ import annotations

import time

from repro.bench import Reporter
from repro.multi.grouping import GroupLevelParallelSolver
from repro.multi.mmqm import MinQualityGreedy
from repro.multi.msqm import SumQualityGreedy
from repro.multi.scheduler import TaskLevelParallelSolver
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution

DISTRIBUTIONS = [Distribution.UNIFORM, Distribution.GAUSSIAN, Distribution.ZIPFIAN]
ALL_DISTRIBUTIONS = DISTRIBUTIONS + [Distribution.REAL]


def _scenario(tasks=24, m=50, workers=500, distribution=Distribution.UNIFORM, seed=5):
    return build_scenario(
        ScenarioConfig(
            num_tasks=tasks,
            num_slots=m,
            num_workers=workers,
            distribution=distribution,
            seed=seed,
        )
    )


def _budget(scenario):
    return scenario.budget * len(scenario.tasks)


def test_fig9a_time_vs_cores(run_once):
    reporter = Reporter("fig9a", "Multi-task time vs cores")
    reporter.note("virtual-clock durations; serial = total work on one core")
    reporter.header("cores", "task_level_vt", "group_level_vt", "serial_vt")

    def work():
        scenario = _scenario()
        budget = _budget(scenario)
        serial_counters = SumQualityGreedy(
            scenario.tasks, scenario.fresh_registry(), budget=budget
        ).solve().counters
        serial_vt = serial_counters.virtual_cost()
        rows = []
        for cores in (1, 2, 4, 8, 10, 12, 16):
            task_vt = TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=cores
            ).solve().virtual_time
            group_vt = GroupLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=cores
            ).solve().virtual_time
            rows.append((cores, task_vt, group_vt, serial_vt))
        return rows

    rows = run_once(work)
    for cores, task_vt, group_vt, serial_vt in rows:
        reporter.row(cores, task_vt, group_vt, serial_vt)
    # Task-level scales; at 10+ cores it clearly beats both others.
    ten_core = next(r for r in rows if r[0] == 10)
    assert ten_core[1] < ten_core[2], "task-level should beat group-level"
    assert ten_core[1] < ten_core[3] / 3, "task-level should clearly beat serial"
    task_series = [r[1] for r in rows]
    assert task_series == sorted(task_series, reverse=True)
    reporter.chart(
        [r[0] for r in rows],
        {
            "task_level": [r[1] for r in rows],
            "group_level": [r[2] for r in rows],
            "serial": [r[3] for r in rows],
        },
        log=True,
    )
    reporter.close()


def test_fig9b_time_and_conflicts_vs_distribution(run_once):
    reporter = Reporter("fig9b", "Multi-task time and conflicts vs distribution")
    reporter.header("distribution", "task_level_vt", "group_level_vt", "conflicts")

    def work():
        rows = []
        for distribution in DISTRIBUTIONS:
            scenario = _scenario(distribution=distribution, workers=300)
            budget = _budget(scenario)
            task_result = TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=10
            ).solve()
            group_result = GroupLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=10
            ).solve()
            rows.append(
                (
                    distribution.value,
                    task_result.virtual_time,
                    group_result.virtual_time,
                    task_result.conflict_count,
                )
            )
        return rows

    rows = run_once(work)
    for distribution, task_vt, group_vt, conflicts in rows:
        reporter.row(distribution, task_vt, group_vt, conflicts)
    conflicts = {d: c for d, _, _, c in rows}
    # Paper: skewed datasets incur larger numbers of worker conflicts.
    assert max(conflicts["gaussian"], conflicts["zipfian"]) > conflicts["uniform"]
    reporter.close()


def test_fig9c_conflicts_vs_tasks(run_once):
    reporter = Reporter("fig9c", "Worker conflicts vs number of tasks")
    reporter.note("|T| in {12, 24, 48} scaled from the paper's 100-500")
    reporter.header("distribution", "tasks", "conflicts")

    def work():
        rows = []
        for distribution in ALL_DISTRIBUTIONS:
            for tasks in (12, 24, 48):
                scenario = _scenario(tasks=tasks, m=30, workers=300,
                                     distribution=distribution)
                result = SumQualityGreedy(
                    scenario.tasks, scenario.fresh_registry(), budget=_budget(scenario)
                ).solve()
                rows.append((distribution.value, tasks, result.conflict_count))
        return rows

    rows = run_once(work)
    series: dict[str, list[int]] = {}
    for distribution, tasks, conflicts in rows:
        reporter.row(distribution, tasks, conflicts)
        series.setdefault(distribution, []).append(conflicts)
    # Paper: conflicts grow with the number of tasks.
    for distribution, counts in series.items():
        assert counts[-1] > counts[0], f"{distribution}: conflicts should grow with |T|"
    reporter.close()


def test_fig9d_time_vs_tasks(run_once):
    reporter = Reporter("fig9d", "Multi-task time vs number of tasks")
    reporter.header("tasks", "task_level_vt", "group_level_vt")

    def work():
        rows = []
        for tasks in (12, 24, 48):
            scenario = _scenario(tasks=tasks, m=40, workers=400)
            budget = _budget(scenario)
            task_vt = TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=10
            ).solve().virtual_time
            group_vt = GroupLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=10
            ).solve().virtual_time
            rows.append((tasks, task_vt, group_vt))
        return rows

    rows = run_once(work)
    for tasks, task_vt, group_vt in rows:
        reporter.row(tasks, task_vt, group_vt)
    task_series = [r[1] for r in rows]
    assert task_series == sorted(task_series), "time grows with |T|"
    # Task-level grows more slowly than group-level.
    assert rows[-1][1] <= rows[-1][2]
    reporter.close()


def test_fig9e_time_vs_m(run_once):
    reporter = Reporter("fig9e", "Multi-task time vs m per distribution")
    reporter.header("distribution", "m", "task_level_vt")

    def work():
        rows = []
        for distribution in ALL_DISTRIBUTIONS:
            for m in (30, 60, 90):
                scenario = _scenario(tasks=16, m=m, workers=400, distribution=distribution)
                vt = TaskLevelParallelSolver(
                    scenario.tasks, scenario.fresh_registry(), budget=_budget(scenario),
                    cores=10,
                ).solve().virtual_time
                rows.append((distribution.value, m, vt))
        return rows

    rows = run_once(work)
    series: dict[str, list[float]] = {}
    for distribution, m, vt in rows:
        reporter.row(distribution, m, vt)
        series.setdefault(distribution, []).append(vt)
    for counts in series.values():
        assert counts[-1] > counts[0], "time grows with m"
    reporter.close()


def test_fig9f_priority_vs_default(run_once):
    reporter = Reporter("fig9f", "Task-level time vs cores: priority vs default")
    reporter.note("serial-equivalent grant mode (the deterministic-plan configuration)")
    reporter.header("cores", "priority_vt", "default_vt")

    def work():
        scenario = _scenario(tasks=24, m=40, workers=400)
        budget = _budget(scenario)
        rows = []
        for cores in (1, 2, 4, 8, 12, 16):
            pri = TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=cores,
                grant_mode="serial-equivalent", priority=True,
            ).solve().virtual_time
            fifo = TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=cores,
                grant_mode="serial-equivalent", priority=False,
            ).solve().virtual_time
            rows.append((cores, pri, fifo))
        return rows

    rows = run_once(work)
    for cores, pri, fifo in rows:
        reporter.row(cores, pri, fifo)
        assert pri <= fifo + 1e-9
    # The gap narrows as cores increase (curves converge).
    first_gap = rows[0][2] / rows[0][1]
    last_gap = rows[-1][2] / rows[-1][1]
    assert first_gap > last_gap
    reporter.close()


def test_fig9g_mmqm_time_vs_tasks(run_once):
    reporter = Reporter("fig9g", "MMQM time vs number of tasks (Approx vs Approx*)")
    reporter.header("tasks", "Approx_s", "ApproxStar_s")

    def work():
        rows = []
        for tasks in (8, 16, 32):
            scenario = _scenario(tasks=tasks, m=40, workers=400)
            budget = _budget(scenario)
            start = time.perf_counter()
            MinQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget,
                use_index=False, gain_strategy="full",
            ).solve()
            naive_t = time.perf_counter() - start
            start = time.perf_counter()
            MinQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget, use_index=True
            ).solve()
            star_t = time.perf_counter() - start
            rows.append((tasks, naive_t, star_t))
        return rows

    rows = run_once(work)
    for tasks, naive_t, star_t in rows:
        reporter.row(tasks, naive_t, star_t)
        assert star_t < naive_t, "Approx* should outperform Approx"
    naive_series = [r[1] for r in rows]
    assert naive_series == sorted(naive_series), "time grows with |T|"
    reporter.close()


def test_fig9h_mmqm_time_vs_m(run_once):
    reporter = Reporter("fig9h", "MMQM time vs m (Approx vs Approx*)")
    reporter.header("m", "Approx_s", "ApproxStar_s")

    def work():
        rows = []
        for m in (30, 60, 90):
            scenario = _scenario(tasks=12, m=m, workers=400)
            budget = _budget(scenario)
            start = time.perf_counter()
            MinQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget,
                use_index=False, gain_strategy="full",
            ).solve()
            naive_t = time.perf_counter() - start
            start = time.perf_counter()
            MinQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget, use_index=True
            ).solve()
            star_t = time.perf_counter() - start
            rows.append((m, naive_t, star_t))
        return rows

    rows = run_once(work)
    for m, naive_t, star_t in rows:
        reporter.row(m, naive_t, star_t)
        if m >= 60:
            # At tiny m the index build overhead hides the win; the
            # paper's smallest point is m=300.
            assert star_t < naive_t
    naive_series = [r[1] for r in rows]
    assert naive_series == sorted(naive_series), "time grows with m"
    # The Approx*/Approx gap widens with m (the paper's 8h shape).
    assert rows[-1][1] / rows[-1][2] > rows[0][1] / rows[0][2]
    reporter.close()
