"""Figure 7 — quality of multi-task assignment.

(a) qsum vs task distribution (RandMin / RandMax / Approx);
(b) qsum vs budget (Approx / RandAvg);
(c) qmin vs task distribution (RandMin / RandMax / Approx);
(d) qmin vs budget (Approx / RandAvg).

Claims: Approx dominates the random band for both objectives, and the
gap shrinks as the budget grows.
"""

from __future__ import annotations

from repro.bench import Reporter, random_multi_assignment
from repro.multi.mmqm import MinQualityGreedy
from repro.multi.msqm import SumQualityGreedy
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution

TASKS = 20
M = 40
WORKERS = 600
TRIALS = 10
DISTRIBUTIONS = [Distribution.UNIFORM, Distribution.GAUSSIAN, Distribution.ZIPFIAN]


def _scenario(distribution, seed=15):
    return build_scenario(
        ScenarioConfig(
            num_tasks=TASKS,
            num_slots=M,
            num_workers=WORKERS,
            distribution=distribution,
            seed=seed,
        )
    )


def _random_band(scenario, budget, aggregate):
    values = []
    for seed in range(TRIALS):
        qualities = random_multi_assignment(
            scenario.tasks, scenario.fresh_registry(), budget=budget, seed=seed
        )
        values.append(aggregate(qualities.values()))
    return min(values), max(values), sum(values) / len(values)


def test_fig7a_qsum_vs_distribution(run_once):
    reporter = Reporter("fig7a", "Multi-task summation quality vs distribution")
    reporter.note(f"|T|={TASKS}, m={M}, workers={WORKERS} (scaled from the paper's 100-500 tasks)")
    reporter.header("distribution", "RandMin", "RandMax", "Approx")

    def work():
        rows = []
        for distribution in DISTRIBUTIONS:
            scenario = _scenario(distribution)
            budget = scenario.budget * TASKS
            approx = SumQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget
            ).solve().sum_quality
            lo, hi, _ = _random_band(scenario, budget, sum)
            rows.append((distribution.value, lo, hi, approx))
        return rows

    for distribution, lo, hi, approx in run_once(work):
        reporter.row(distribution, lo, hi, approx)
        assert approx >= hi, f"{distribution}: Approx should beat RandMax"
    reporter.close()


def test_fig7b_qsum_vs_budget(run_once):
    reporter = Reporter("fig7b", "Multi-task summation quality vs budget")
    reporter.note("budgets as fractions of the full task-set cost, standing in for $50-$200")
    reporter.header("budget_fraction", "Approx", "RandAvg")

    def work():
        scenario = _scenario(Distribution.UNIFORM)
        full = scenario.budget * TASKS / 0.25  # the 100% reference
        rows = []
        for fraction in (0.125, 0.25, 0.375, 0.5):
            budget = fraction * full
            approx = SumQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget
            ).solve().sum_quality
            _, _, avg = _random_band(scenario, budget, sum)
            rows.append((fraction, approx, avg))
        return rows

    rows = run_once(work)
    approx_series = []
    for fraction, approx, avg in rows:
        reporter.row(fraction, approx, avg)
        assert approx >= avg
        approx_series.append(approx)
    assert approx_series == sorted(approx_series), "quality grows with budget"
    reporter.close()


def test_fig7c_qmin_vs_distribution(run_once):
    reporter = Reporter("fig7c", "Multi-task minimum quality vs distribution")
    reporter.header("distribution", "RandMin", "RandMax", "Approx")

    def work():
        rows = []
        for distribution in DISTRIBUTIONS:
            scenario = _scenario(distribution)
            budget = scenario.budget * TASKS
            approx = MinQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget
            ).solve().min_quality
            lo, hi, _ = _random_band(scenario, budget, min)
            rows.append((distribution.value, lo, hi, approx))
        return rows

    for distribution, lo, hi, approx in run_once(work):
        reporter.row(distribution, lo, hi, approx)
        assert approx >= hi, f"{distribution}: MMQM Approx should beat RandMax"
    reporter.close()


def test_fig7d_qmin_vs_budget(run_once):
    reporter = Reporter("fig7d", "Multi-task minimum quality vs budget")
    reporter.header("budget_fraction", "Approx", "RandAvg")

    def work():
        scenario = _scenario(Distribution.UNIFORM)
        full = scenario.budget * TASKS / 0.25
        rows = []
        for fraction in (0.125, 0.25, 0.375, 0.5):
            budget = fraction * full
            approx = MinQualityGreedy(
                scenario.tasks, scenario.fresh_registry(), budget=budget
            ).solve().min_quality
            _, _, avg = _random_band(scenario, budget, min)
            rows.append((fraction, approx, avg))
        return rows

    for fraction, approx, avg in run_once(work):
        reporter.row(fraction, approx, avg)
        assert approx >= avg
    reporter.close()
