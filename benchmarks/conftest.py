"""Shared benchmark configuration.

Every benchmark runs its workload once (``rounds=1``) — the paper's
experiments are throughput measurements of full solver runs, not
micro-benchmarks — and reports the series it regenerates through
:class:`repro.bench.Reporter`, which persists them under
``benchmarks/results/``.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
