#!/usr/bin/env python
"""Water-quality monitoring — the paper's running example, end to end.

A crowdsourcer wants the microbial content of a lake measured over a
long window (Fig. 1).  We simulate the physical truth as a smooth
spatiotemporal field, let the assigned workers "probe" it, interpolate
the unprobed slots with inverse-distance weighting, and compare the
reconstruction against the ground truth — demonstrating that the
entropy quality metric is a faithful *a-priori* proxy for the
*a-posteriori* reconstruction error, across budgets and against the
random baseline.

Run:  python examples/water_quality_monitoring.py
"""

from __future__ import annotations

from repro import (
    ScenarioConfig,
    SpatioTemporalField,
    TCSCServer,
    build_scenario,
)


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(num_tasks=1, num_slots=200, num_workers=800, seed=11)
    )
    task = scenario.single_task

    # The "lake": a drifting-plume field standing in for microbial content.
    field = SpatioTemporalField(scenario.bbox, num_plumes=4, amplitude=50.0, seed=3)
    server = TCSCServer(scenario.pool, scenario.bbox, field_model=field)

    print("budget sweep — entropy quality vs physical reconstruction error")
    print(f"{'budget%':>8} {'assigned':>9} {'quality':>9} {'RMSE':>8}")
    full_budget = scenario.budget / 0.25  # 100% of the average task cost
    for percent in (5, 10, 25, 50, 75):
        report = server.assign_single(task, full_budget * percent / 100.0)
        print(
            f"{percent:>7}% {len(report.assignment):>9} "
            f"{report.qualities[task.task_id]:>9.4f} "
            f"{report.rmse[task.task_id]:>8.3f}"
        )

    print("\npolicy comparison at the default budget (25%)")
    print(f"{'policy':>12} {'quality':>9} {'RMSE':>8}")
    for policy in ("approx_star", "random"):
        report = server.assign_single(task, scenario.budget, policy=policy, seed=1)
        print(
            f"{policy:>12} {report.qualities[task.task_id]:>9.4f} "
            f"{report.rmse[task.task_id]:>8.3f}"
        )

    print(
        "\nTakeaway: more budget -> higher entropy quality -> lower RMSE, and\n"
        "the quality-aware placement reconstructs the signal better than a\n"
        "random placement of the same cost."
    )


if __name__ == "__main__":
    main()
