#!/usr/bin/env python
"""Air-quality monitoring with spatiotemporal interpolation (STCC).

Several monitoring tasks cover one city district.  Because the tasks
are spatially close, a probe taken for one task also informs its
neighbours at the same time slot — the Appendix C extension.  This
example contrasts the temporal-only planner (``Approx``) with the
combined planner (``SApprox``) under the spatiotemporal quality
metric, and sweeps the temporal weight ``wt``.

Run:  python examples/air_quality_spatiotemporal.py
"""

from __future__ import annotations

from repro import (
    Distribution,
    ScenarioConfig,
    SpatioTemporalGreedy,
    build_scenario,
    score_assignment,
)


def combined_score(scenario, assignment, wt=0.7, ws=0.3):
    """Score any assignment under the reference combined metric."""
    return sum(
        score_assignment(scenario.tasks, scenario.bbox, assignment, wt=wt, ws=ws).values()
    )


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=10,
            num_slots=12,
            num_workers=150,
            distribution=Distribution.GAUSSIAN,
            seed=31,
        )
    )
    budget = scenario.budget * len(scenario.tasks)
    print(f"{len(scenario.tasks)} sensor tasks, shared budget {budget:.1f}")

    # SApprox optimizes the combined (temporal + spatial) objective.
    sapprox = SpatioTemporalGreedy(
        scenario.tasks, scenario.fresh_registry(), scenario.bbox,
        budget=budget, wt=0.7, ws=0.3,
    ).solve()
    # Approx ignores spatial coupling (wt = 1).
    approx = SpatioTemporalGreedy(
        scenario.tasks, scenario.fresh_registry(), scenario.bbox,
        budget=budget, wt=1.0, ws=0.0,
    ).solve()

    approx_combined = combined_score(scenario, approx.assignment)
    print("\nscored under the combined metric (wt=0.7, ws=0.3):")
    print(f"  SApprox: {sapprox.sum_quality:8.4f}")
    print(f"  Approx : {approx_combined:8.4f}")
    print(f"  spatial-awareness gain: {sapprox.sum_quality - approx_combined:+.4f}")

    # How the combined planner spreads probes differently: count slots
    # where two or more tasks probe simultaneously (spatially wasteful
    # under the combined metric, invisible to the temporal one).
    def simultaneous_probes(assignment):
        per_slot: dict[int, int] = {}
        for record in assignment:
            per_slot[record.slot] = per_slot.get(record.slot, 0) + 1
        return sum(1 for count in per_slot.values() if count > 1)

    print(f"\nslots probed by 2+ tasks at once: "
          f"Approx={simultaneous_probes(approx.assignment)}, "
          f"SApprox={simultaneous_probes(sapprox.assignment)} "
          "(the combined planner de-duplicates in space)")

    print("\ntemporal-weight sweep (plans scored under wt=0.7):")
    for wt10 in range(0, 11, 2):
        wt = wt10 / 10.0
        plan = SpatioTemporalGreedy(
            scenario.tasks, scenario.fresh_registry(), scenario.bbox,
            budget=budget, wt=wt, ws=1.0 - wt,
        ).solve()
        print(f"  wt={wt:.1f}: {combined_score(scenario, plan.assignment):8.4f}")


if __name__ == "__main__":
    main()
