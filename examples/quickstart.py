#!/usr/bin/env python
"""Quickstart: assign one time-continuous task and inspect the result.

Builds a synthetic scenario (one 300-slot task, 1000 trajectory
workers), runs the paper's Approx* solver through the TCSC server, and
prints what the crowdsourcer gets back: the entropy quality, the
budget spend, and the executed-slot layout.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ScenarioConfig, TCSCServer, build_scenario, max_quality


def main() -> None:
    # 1. A scenario = tasks + workers + spatial domain + default budget.
    #    Defaults mirror the paper's Section V-A setup (m=300, k=3,
    #    ts=4, budget = 25% of the average full-task cost).
    scenario = build_scenario(
        ScenarioConfig(num_tasks=1, num_slots=300, num_workers=1000, seed=42)
    )
    task = scenario.single_task
    print(f"task at ({task.loc.x:.1f}, {task.loc.y:.1f}), m={task.num_slots} slots")
    print(f"budget: {scenario.budget:.2f} (25% of the average full-task travel cost)")

    # 2. The server looks up registered worker availability, decomposes
    #    the task into subtasks, and runs the assignment policy.
    server = TCSCServer(scenario.pool, scenario.bbox)
    report = server.assign_single(task, scenario.budget, policy="approx_star")

    # 3. The report: quality, spend, and the assignment itself.
    quality = report.qualities[task.task_id]
    print(f"\nassigned {len(report.assignment)} of {task.num_slots} subtasks")
    print(f"spent {report.total_cost:.2f} of {scenario.budget:.2f}")
    print(f"task quality: {quality:.4f} (metric maximum: {max_quality(task.num_slots):.4f})")

    executed = report.assignment.executed_slots(task.task_id)
    gaps = [b - a for a, b in zip(executed, executed[1:])]
    print(f"executed-slot spacing: min={min(gaps)}, max={max(gaps)} "
          f"(the greedy spreads probes to shrink interpolation distances)")

    # 4. Compare against the random baseline the paper plots.
    random_report = server.assign_single(task, scenario.budget, policy="random", seed=7)
    print(f"\nrandom baseline quality: {random_report.qualities[task.task_id]:.4f}")
    print(f"Approx* advantage: "
          f"{quality - random_report.qualities[task.task_id]:+.4f}")


if __name__ == "__main__":
    main()
