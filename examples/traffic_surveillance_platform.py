#!/usr/bin/env python
"""Traffic surveillance — a multi-task crowdsourcing platform round.

A city posts many simultaneous road-monitoring tasks (the paper's
traffic-surveillance motivation).  Tasks cluster around hotspots, so
they *compete for workers*: this example shows the worker-conflict
machinery of Section IV in action — conflict detection, independent
grouping, both multi-task objectives, and the task-level parallel
framework with its speedup curve.

Run:  python examples/traffic_surveillance_platform.py
"""

from __future__ import annotations

from repro import (
    Distribution,
    GroupLevelParallelSolver,
    MinQualityGreedy,
    ScenarioConfig,
    SumQualityGreedy,
    TaskLevelParallelSolver,
    build_scenario,
    detect_conflicts,
    independent_groups,
)


def main() -> None:
    # Gaussian task locations = monitoring points clustered downtown.
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=16,
            num_slots=40,
            num_workers=300,
            distribution=Distribution.GAUSSIAN,
            seed=23,
        )
    )
    budget = scenario.budget * len(scenario.tasks)
    print(f"{len(scenario.tasks)} tasks, {len(scenario.pool)} workers, budget {budget:.1f}")

    # --- conflict structure -------------------------------------------
    conflicts = detect_conflicts(scenario.tasks, scenario.fresh_registry())
    groups = independent_groups(scenario.tasks, scenario.fresh_registry())
    print(f"\nrank-1 worker conflicts: {len(conflicts)}")
    print(f"independent task groups: {[len(g) for g in groups]} "
          "(skewed tasks tend to fuse into one big group)")

    # --- the two objectives -------------------------------------------
    msqm = SumQualityGreedy(
        scenario.tasks, scenario.fresh_registry(), budget=budget
    ).solve()
    mmqm = MinQualityGreedy(
        scenario.tasks, scenario.fresh_registry(), budget=budget
    ).solve()
    print("\nobjective comparison (same budget):")
    print(f"  MSQM: qsum={msqm.sum_quality:8.3f}  qmin={msqm.min_quality:6.3f}  "
          f"runtime conflicts={msqm.conflict_count}")
    print(f"  MMQM: qsum={mmqm.sum_quality:8.3f}  qmin={mmqm.min_quality:6.3f}  "
          "(sacrifices total quality to lift the weakest task)")

    # --- parallelization ----------------------------------------------
    print("\ntask-level parallel framework (virtual-clock cores):")
    base = None
    for cores in (1, 2, 4, 8, 12):
        result = TaskLevelParallelSolver(
            scenario.tasks, scenario.fresh_registry(), budget=budget, cores=cores
        ).solve()
        base = base or result.virtual_time
        print(f"  cores={cores:2d}  time={result.virtual_time:12.0f}  "
              f"speedup={base / result.virtual_time:5.2f}x  "
              f"qsum={result.sum_quality:.3f}")

    group = GroupLevelParallelSolver(
        scenario.tasks, scenario.fresh_registry(), budget=budget, cores=8
    ).solve()
    print(f"  group-level @8 cores: time={group.virtual_time:12.0f} "
          "(coarse granularity saturates on the biggest group)")


if __name__ == "__main__":
    main()
