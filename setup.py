"""Setup shim.

The offline build environment lacks the ``wheel`` package, so PEP-660
editable installs cannot build an editable wheel.  Keeping a classic
``setup.py`` (and no ``[build-system]`` table in pyproject.toml) lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works with plain setuptools.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
