"""Tests for operation counters and the error hierarchy."""

from __future__ import annotations

import pytest

from repro.core.instrumentation import OpCounters
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    InfeasibleAssignmentError,
    SchedulingError,
    TCSCError,
    WorkerUnavailableError,
)


class TestOpCounters:
    def test_merge(self):
        a = OpCounters(knn_queries=2, iterations=1)
        b = OpCounters(knn_queries=3, slot_evaluations=5)
        a.merge(b)
        assert a.knn_queries == 5
        assert a.slot_evaluations == 5
        assert a.iterations == 1

    def test_snapshot_and_delta(self):
        counters = OpCounters(knn_queries=2)
        snap = counters.snapshot()
        counters.knn_queries += 7
        counters.gain_evaluations += 1
        delta = counters.delta_since(snap)
        assert delta.knn_queries == 7
        assert delta.gain_evaluations == 1
        assert snap.knn_queries == 2  # snapshot unaffected

    def test_pruning_ratio(self):
        counters = OpCounters(candidates_total=100, candidates_pruned=80)
        assert counters.pruning_ratio == pytest.approx(0.8)
        assert OpCounters().pruning_ratio == 0.0

    def test_virtual_cost_weights(self):
        counters = OpCounters(knn_queries=1, slot_evaluations=1, gain_evaluations=1,
                              worker_cost_lookups=1, tree_node_visits=1, tree_node_updates=1)
        assert counters.virtual_cost() == pytest.approx(1 + 1 + 2 + 3 + 0.5 + 0.5)

    def test_virtual_cost_monotone(self):
        small = OpCounters(knn_queries=1)
        big = OpCounters(knn_queries=100, gain_evaluations=20)
        assert big.virtual_cost() > small.virtual_cost()


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            InfeasibleAssignmentError,
            BudgetExhaustedError,
            WorkerUnavailableError,
            SchedulingError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, TCSCError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_catchable_as_base(self):
        with pytest.raises(TCSCError):
            raise BudgetExhaustedError("out of money")
