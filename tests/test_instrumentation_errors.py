"""Tests for operation counters and the error hierarchy."""

from __future__ import annotations

import pytest

from repro.core.instrumentation import OpCounters
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    InfeasibleAssignmentError,
    SchedulingError,
    TCSCError,
    WorkerUnavailableError,
)


class TestOpCounters:
    def test_merge(self):
        a = OpCounters(knn_queries=2, iterations=1)
        b = OpCounters(knn_queries=3, slot_evaluations=5)
        a.merge(b)
        assert a.knn_queries == 5
        assert a.slot_evaluations == 5
        assert a.iterations == 1

    def test_snapshot_and_delta(self):
        counters = OpCounters(knn_queries=2)
        snap = counters.snapshot()
        counters.knn_queries += 7
        counters.gain_evaluations += 1
        delta = counters.delta_since(snap)
        assert delta.knn_queries == 7
        assert delta.gain_evaluations == 1
        assert snap.knn_queries == 2  # snapshot unaffected

    def test_diff_is_field_wise_subtraction(self):
        counters = OpCounters(knn_queries=5, gain_evaluations=2)
        snap = counters.snapshot()
        counters.knn_queries += 4
        counters.tree_node_visits += 9
        delta = counters.diff(snap)
        assert delta.knn_queries == 4
        assert delta.tree_node_visits == 9
        assert delta.gain_evaluations == 0
        # diff is the primitive delta_since delegates to.
        assert repr(delta) == repr(counters.delta_since(snap))

    def test_diff_leaves_operands_untouched(self):
        counters = OpCounters(knn_queries=3)
        snap = counters.snapshot()
        counters.knn_queries += 2
        counters.diff(snap)
        assert counters.knn_queries == 5
        assert snap.knn_queries == 3

    def test_to_dict_nonzero_only(self):
        counters = OpCounters(knn_queries=2)
        full = counters.to_dict()
        sparse = counters.to_dict(nonzero_only=True)
        assert full["knn_queries"] == 2
        assert 0 in full.values()  # zero fields present in the full view
        assert sparse == {"knn_queries": 2}
        assert OpCounters().to_dict(nonzero_only=True) == {}

    def test_pruning_ratio(self):
        counters = OpCounters(candidates_total=100, candidates_pruned=80)
        assert counters.pruning_ratio == pytest.approx(0.8)
        assert OpCounters().pruning_ratio == 0.0

    def test_virtual_cost_weights(self):
        counters = OpCounters(knn_queries=1, slot_evaluations=1, gain_evaluations=1,
                              worker_cost_lookups=1, tree_node_visits=1, tree_node_updates=1)
        assert counters.virtual_cost() == pytest.approx(1 + 1 + 2 + 3 + 0.5 + 0.5)

    def test_virtual_cost_monotone(self):
        small = OpCounters(knn_queries=1)
        big = OpCounters(knn_queries=100, gain_evaluations=20)
        assert big.virtual_cost() > small.virtual_cost()


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            InfeasibleAssignmentError,
            BudgetExhaustedError,
            WorkerUnavailableError,
            SchedulingError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, TCSCError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_catchable_as_base(self):
        with pytest.raises(TCSCError):
            raise BudgetExhaustedError("out of money")
