"""Tests for the elastic sharding subsystem (:mod:`repro.elastic`)."""

from __future__ import annotations

import pytest

from repro.elastic import (
    DEFAULT_PARTITIONS,
    ElasticAction,
    ElasticController,
    ElasticShardMap,
    ElasticStreamingServer,
    MigrationLogLayer,
    ShardLog,
)
from repro.errors import ConfigurationError, JournalReplayError, SchedulingError, SpecError
from repro.geo.bbox import BoundingBox
from repro.runtime import RunSpec, WorkloadSpec, build_runtime
from repro.shard.streaming import ShardedStreamingServer
from repro.stream.online_server import StreamingTCSCServer
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events

_CFG = StreamScenarioConfig(
    horizon=16, task_rate=0.4, task_slots=8, initial_workers=14,
    worker_join_rate=0.8, mean_worker_lifetime=12.0, seed=9,
)
_KWARGS = dict(
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8,
)


def _trace():
    return build_stream_events(_CFG)


def _elastic(trace, controller, *, num_executors=2, partitions=2, **overrides):
    kwargs = dict(_KWARGS, **overrides)
    return ElasticStreamingServer(
        trace.bbox,
        num_executors=num_executors,
        partitions_per_executor=partitions,
        controller=controller,
        **kwargs,
    )


# ----------------------------------------------------------------------
# The stepping API the lockstep drive is built on
# ----------------------------------------------------------------------
class TestSteppingAPI:
    def test_stepwise_equals_run(self):
        trace = _trace()
        whole = StreamingTCSCServer(trace.bbox, **_KWARGS)
        whole_metrics = whole.run(list(trace.events))

        trace2 = _trace()
        stepped = StreamingTCSCServer(trace2.bbox, **_KWARGS)
        stepped.begin(list(trace2.events))
        while stepped.pending_work():
            stepped.step_epoch()
        stepped_metrics = stepped.finish()

        assert stepped_metrics == whole_metrics
        assert (
            stepped.assignment().plan_signature()
            == whole.assignment().plan_signature()
        )
        assert stepped.counters == whole.counters

    def test_begin_is_one_shot(self):
        trace = _trace()
        server = StreamingTCSCServer(trace.bbox, **_KWARGS)
        server.begin(list(trace.events))
        with pytest.raises(SchedulingError):
            server.begin([])

    def test_next_boundary_is_side_effect_free(self):
        trace = _trace()
        server = StreamingTCSCServer(trace.bbox, **_KWARGS)
        server.begin(list(trace.events))
        first = server.next_boundary()
        assert server.next_boundary() == first
        now = server.step_epoch()
        assert now == first

    def test_pending_work_drains_to_false(self):
        trace = _trace()
        server = StreamingTCSCServer(trace.bbox, **_KWARGS)
        server.begin(list(trace.events))
        assert server.pending_work()
        while server.pending_work():
            server.step_epoch()
        assert not server.pending_work()


# ----------------------------------------------------------------------
# The epoch-versioned placement map
# ----------------------------------------------------------------------
class TestShardMap:
    def test_initial_block_placement(self):
        shard_map = ElasticShardMap(8, 2)
        assert shard_map.executors == (0, 1)
        assert shard_map.shards_on(0) == (0, 1, 2, 3)
        assert shard_map.shards_on(1) == (4, 5, 6, 7)
        assert shard_map.version == 0

    @pytest.mark.parametrize("shards,executors", [(0, 1), (3, 2), (2, 4)])
    def test_rejects_non_multiple_layout(self, shards, executors):
        with pytest.raises(ConfigurationError):
            ElasticShardMap(shards, executors)

    def test_migrate_bumps_version_once_and_rehomes(self):
        shard_map = ElasticShardMap(4, 2)
        version = shard_map.migrate(0, 1)
        assert version == shard_map.version == 1
        assert shard_map.executor_of(0) == 1
        assert shard_map.history == [(1, "migrate", 0, 0, 1)]

    def test_migrate_rejects_noop_and_unknown(self):
        shard_map = ElasticShardMap(4, 2)
        with pytest.raises(ConfigurationError):
            shard_map.migrate(0, 0)  # already there
        with pytest.raises(ConfigurationError):
            shard_map.migrate(9, 1)  # unknown shard
        with pytest.raises(ConfigurationError):
            shard_map.migrate(0, 7)  # dead executor
        assert shard_map.version == 0  # failed mutations leave no trace

    def test_executor_ids_are_monotone_across_split_merge(self):
        shard_map = ElasticShardMap(4, 2)
        first = shard_map.add_executor()
        assert first == 2
        shard_map.remove_executor(first)
        assert shard_map.add_executor() == 3  # never reused

    def test_remove_requires_empty_and_not_last(self):
        shard_map = ElasticShardMap(2, 2)
        with pytest.raises(ConfigurationError):
            shard_map.remove_executor(0)  # still hosts shard 0
        shard_map.migrate(0, 1)
        shard_map.remove_executor(0)
        assert shard_map.executors == (1,)
        with pytest.raises(ConfigurationError):
            shard_map.remove_executor(1)  # the last one

    def test_every_shard_owned_exactly_once_after_mutations(self):
        shard_map = ElasticShardMap(8, 2)
        new = shard_map.add_executor()
        shard_map.migrate(3, new)
        shard_map.migrate(7, 0)
        owners = [shard_map.executor_of(s) for s in range(8)]
        assert len(owners) == 8
        hosted = [s for e in shard_map.executors for s in shard_map.shards_on(e)]
        assert sorted(hosted) == list(range(8))

    def test_stats_shape(self):
        shard_map = ElasticShardMap(4, 2)
        shard_map.migrate(0, 1)
        stats = shard_map.stats()
        assert stats["version"] == 1
        assert stats["shards_per_executor"] == {0: 1, 1: 3}
        assert stats["mutations"] == 1


# ----------------------------------------------------------------------
# The controller policy
# ----------------------------------------------------------------------
class TestController:
    def test_rejects_bad_hysteresis(self):
        with pytest.raises(ConfigurationError):
            ElasticController(queue_high=2, queue_low=2)
        with pytest.raises(ConfigurationError):
            ElasticController(queue_high=2, queue_low=-1)
        with pytest.raises(ConfigurationError):
            ElasticController(cooldown=-1)

    def test_fixed_fires_at_first_boundary_at_or_after_time(self):
        controller = ElasticController.fixed([(5.0, 0, 1)])
        shard_map = ElasticShardMap(4, 2)
        signals = {s: (0, 0.0) for s in range(4)}
        assert controller.decide(1, 3.0, signals, shard_map) == []
        actions = controller.decide(2, 6.0, signals, shard_map)
        assert actions == [ElasticAction("migrate", shard=0, source=0, dest=1)]
        assert controller.unfired() == []

    def test_fixed_resolves_hottest_and_coldest(self):
        controller = ElasticController.fixed([(0.0, None, None)])
        shard_map = ElasticShardMap(4, 2)
        signals = {0: (1, 0.0), 1: (9, 0.0), 2: (0, 0.0), 3: (0, 0.0)}
        actions = controller.decide(1, 0.0, signals, shard_map)
        assert actions == [ElasticAction("migrate", shard=1, source=0, dest=1)]

    def test_fixed_empty_plan_never_acts(self):
        controller = ElasticController.fixed([])
        shard_map = ElasticShardMap(4, 2)
        signals = {s: (99, 9.9) for s in range(4)}
        for tick in range(5):
            assert controller.decide(tick, float(tick), signals, shard_map) == []

    def test_unfired_reports_unreached_entries(self):
        controller = ElasticController.fixed([(100.0, None, None)])
        shard_map = ElasticShardMap(4, 2)
        controller.decide(1, 3.0, {s: (0, 0.0) for s in range(4)}, shard_map)
        assert controller.unfired() == [(100.0, None, None)]

    def test_auto_migrates_hot_to_cold_with_gain_guard(self):
        controller = ElasticController(queue_high=4, queue_low=1, cooldown=0)
        shard_map = ElasticShardMap(4, 2)
        # Executor 0 hot via two shards; moving one strictly helps.
        signals = {0: (3, 1.0), 1: (3, 1.0), 2: (0, 0.0), 3: (0, 0.0)}
        actions = controller.decide(1, 3.0, signals, shard_map)
        assert len(actions) == 1 and actions[0].kind == "migrate"
        assert actions[0].source == 0 and actions[0].dest == 1

    def test_auto_never_ping_pongs_single_hot_shard(self):
        # The whole hot queue lives on one shard: moving it cannot
        # lower the pairwise max, so the gain guard must refuse.
        controller = ElasticController(queue_high=4, queue_low=1, cooldown=0)
        shard_map = ElasticShardMap(4, 2)
        signals = {0: (8, 2.0), 1: (0, 0.0), 2: (0, 0.0), 3: (0, 0.0)}
        assert controller.decide(1, 3.0, signals, shard_map) == []

    def test_auto_cooldown_spaces_actions(self):
        controller = ElasticController(queue_high=4, queue_low=1, cooldown=2)
        shard_map = ElasticShardMap(4, 2)
        signals = {0: (3, 1.0), 1: (3, 1.0), 2: (0, 0.0), 3: (0, 0.0)}
        assert controller.decide(1, 3.0, signals, shard_map)
        shard_map2 = ElasticShardMap(4, 2)  # same shape again
        assert controller.decide(2, 6.0, signals, shard_map2) == []
        assert controller.decide(3, 9.0, signals, shard_map2) == []
        assert controller.decide(4, 12.0, signals, shard_map2)

    def test_auto_splits_when_everyone_is_hot(self):
        controller = ElasticController(queue_high=2, queue_low=0, cooldown=0)
        shard_map = ElasticShardMap(4, 2)
        signals = {s: (5, 1.0) for s in range(4)}
        actions = controller.decide(1, 3.0, signals, shard_map)
        assert len(actions) == 1 and actions[0].kind == "split"

    def test_auto_merges_when_calm_above_initial(self):
        controller = ElasticController(queue_high=4, queue_low=1, cooldown=0)
        shard_map = ElasticShardMap(4, 2)
        new = shard_map.add_executor()
        shard_map.migrate(0, new)
        signals = {s: (0, 0.0) for s in range(4)}
        actions = controller.decide(1, 3.0, signals, shard_map)
        assert len(actions) == 1 and actions[0].kind == "merge"
        assert actions[0].source == new

    def test_transitions_record_decisions(self):
        controller = ElasticController.fixed([(0.0, 0, 1)])
        shard_map = ElasticShardMap(4, 2)
        controller.decide(1, 0.0, {s: (0, 0.0) for s in range(4)}, shard_map)
        assert controller.transitions == [(1, 0.0, "migrate", 0, 0, 1)]


# ----------------------------------------------------------------------
# Migration exactness on a live trace
# ----------------------------------------------------------------------
class TestMigrationExactness:
    def test_migrated_run_is_byte_identical(self):
        trace = _trace()
        ref = _elastic(_trace(), ElasticController.fixed([]))
        ref_metrics = ref.run(list(trace.events))

        boundary = ref_metrics.boundary_times[len(ref_metrics.boundary_times) // 2]
        moved = _elastic(_trace(), ElasticController.fixed([(boundary, 0, None)]))
        metrics = moved.run(list(trace.events))

        assert len(metrics.migrations) == 1
        record = metrics.migrations[0]
        assert record.shard == 0 and record.map_version == 1
        assert (
            moved.assignment().plan_signature()
            == ref.assignment().plan_signature()
        )
        assert metrics.per_shard == ref_metrics.per_shard
        assert [c.counters for c in moved.servers] == [
            c.counters for c in ref.servers
        ]

    def test_migration_rehosts_in_shard_map(self):
        trace = _trace()
        server = _elastic(trace, ElasticController.fixed([(6.0, 1, None)]))
        metrics = server.run(list(trace.events))
        assert len(metrics.migrations) == 1
        record = metrics.migrations[0]
        assert server.shard_map.executor_of(1) == record.dest
        assert server.shard_map.version == 1
        assert metrics.map_version == 1

    def test_elastic_metrics_report_mentions_migration(self):
        trace = _trace()
        server = _elastic(trace, ElasticController.fixed([(6.0, 1, None)]))
        metrics = server.run(list(trace.events))
        report = metrics.report()
        assert "elastic" in report
        assert "migrate shard 1" in report
        assert "balance" in report

    def test_run_is_one_shot(self):
        trace = _trace()
        server = _elastic(trace, ElasticController.fixed([]))
        server.run(list(trace.events))
        with pytest.raises(SchedulingError):
            server.run([])

    def test_rejects_bad_shapes(self):
        bbox = BoundingBox.square(10)
        with pytest.raises(ConfigurationError):
            ElasticStreamingServer(bbox, num_executors=0)
        with pytest.raises(ConfigurationError):
            ElasticStreamingServer(bbox, num_executors=2, partitions_per_executor=0)
        with pytest.raises(ConfigurationError):
            ElasticStreamingServer(bbox, num_executors=2, snapshot_every=0)


# ----------------------------------------------------------------------
# The verified migration log
# ----------------------------------------------------------------------
class TestMigrationLog:
    def _layer(self):
        log = ShardLog(0)
        layer = MigrationLogLayer(log)
        return log, layer

    def test_append_mode_accumulates_suffix(self):
        log, layer = self._layer()
        layer._emit(["epoch", [1, 3.0]])
        layer._emit(["finalize", [7]])
        assert log.suffix == [["epoch", [1, 3.0]], ["finalize", [7]]]
        assert log.records_logged == 2

    def test_replay_verifies_and_consumes(self):
        log, layer = self._layer()
        layer.begin_replay([["epoch", [1, 3.0]]])
        assert layer.replaying
        layer._emit(["epoch", [1, 3.0]])
        layer.end_replay()
        assert not layer.replaying

    def test_tampered_suffix_raises_replay_error(self):
        log, layer = self._layer()
        layer.begin_replay([["epoch", [1, 3.0]]])
        with pytest.raises(JournalReplayError):
            layer._emit(["epoch", [2, 3.0]])  # diverged record

    def test_short_replay_raises_on_end(self):
        log, layer = self._layer()
        layer.begin_replay([["epoch", [1, 3.0]], ["finalize", [7]]])
        layer._emit(["epoch", [1, 3.0]])
        with pytest.raises(JournalReplayError):
            layer.end_replay()

    def test_over_generation_raises(self):
        log, layer = self._layer()
        layer.begin_replay([])
        with pytest.raises(JournalReplayError):
            layer._emit(["epoch", [1, 3.0]])

    def test_tampered_live_suffix_fails_migration(self):
        """Corrupting one logged commit makes the next migration's
        catch-up verification fail loudly, leaving the map untouched."""
        trace = _trace()
        server = _elastic(trace, ElasticController.fixed([(6.0, 1, None)]))

        tampered = {"done": False}
        original_decide = server.controller.decide

        def corrupt_then_decide(tick, now, signals, shard_map):
            actions = original_decide(tick, now, signals, shard_map)
            if actions and not tampered["done"]:
                log = server._logs[actions[0].shard]
                if log.suffix:
                    log.suffix[0] = ["epoch", [-1, -1.0]]
                    tampered["done"] = True
            return actions

        server.controller.decide = corrupt_then_decide
        with pytest.raises(JournalReplayError):
            server.run(list(trace.events))
        assert tampered["done"]
        assert server.shard_map.version == 0  # ownership never flipped


# ----------------------------------------------------------------------
# Spec + factory composition
# ----------------------------------------------------------------------
def _spec(**overrides):
    base = dict(
        mode="stream",
        workload=WorkloadSpec(
            horizon=_CFG.horizon, task_rate=_CFG.task_rate,
            task_slots=_CFG.task_slots, initial_workers=_CFG.initial_workers,
            join_rate=_CFG.worker_join_rate,
            mean_lifetime=_CFG.mean_worker_lifetime, seed=_CFG.seed,
        ),
        shards=2,
        **_KWARGS,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSpecValidation:
    def test_accepts_elastic_modes(self):
        _spec(elastic="auto").validate()
        _spec(elastic="fixed", migrate_at=2).validate()
        _spec(elastic="off").validate()

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(elastic="magic"), "unknown elastic"),
            (dict(mode="plain", elastic="auto",
                  workload=WorkloadSpec(tasks=4, workers=8)), "pairing"),
            (dict(elastic="auto", shards=1), "shards >= 2"),
            (dict(elastic="auto", journal="/tmp/j"), "pairing"),
            (dict(elastic="fixed"), "migrate_at"),
            (dict(migrate_at=3), "elastic='fixed'"),
            (dict(elastic="fixed", migrate_at=-1), ">= 0"),
            (dict(elastic="auto", migrate_queue_high=0), "migrate_queue_high"),
            (dict(elastic="auto", migrate_queue_low=-1), "migrate_queue_low"),
            (dict(elastic="auto", migrate_queue_low=8, migrate_queue_high=8),
             "hysteresis"),
        ],
    )
    def test_rejections(self, overrides, fragment):
        with pytest.raises(SpecError, match=fragment):
            _spec(**overrides).validate()

    def test_hotspot_drift_bounds(self):
        with pytest.raises(SpecError, match="hotspot_drift"):
            WorkloadSpec(hotspot_drift=1.5).validate()
        WorkloadSpec(hotspot_drift=0.5).validate()


class TestFactoryComposition:
    def test_elastic_off_is_byte_identical_to_direct_stack(self):
        outcome = build_runtime(_spec(elastic="off")).run()
        assert type(outcome.server) is ShardedStreamingServer

        trace = _trace()
        direct = ShardedStreamingServer(trace.bbox, num_shards=2, **_KWARGS)
        direct_metrics = direct.run(list(trace.events))
        assert outcome.plan_signature == direct.assignment().plan_signature()
        assert outcome.metrics.per_shard == direct_metrics.per_shard
        assert list(outcome.counters) == [c.counters for c in direct.servers]

    def test_elastic_auto_builds_elastic_server(self):
        runtime = build_runtime(_spec(elastic="auto", migrate_queue_high=4,
                                      migrate_queue_low=1))
        assert isinstance(runtime.server, ElasticStreamingServer)
        assert runtime.server.controller.queue_high == 4
        assert runtime.server.controller.queue_low == 1
        assert runtime.server.num_executors == 2
        assert runtime.server.num_shards == 2 * DEFAULT_PARTITIONS

    def test_elastic_fixed_migrates_at_epoch(self):
        outcome = build_runtime(_spec(elastic="fixed", migrate_at=2)).run()
        metrics = outcome.metrics
        assert len(metrics.migrations) == 1
        assert metrics.migrations[0].time == pytest.approx(
            2 * _KWARGS["epoch_length"]
        )

    def test_elastic_plan_matches_static_sharded_logical_layout(self):
        """Placement is invisible to the computation: the elastic run's
        plan equals a static sharded run over the same logical shards."""
        outcome = build_runtime(_spec(elastic="auto")).run()
        trace = _trace()
        static = ShardedStreamingServer(
            trace.bbox, num_shards=2 * DEFAULT_PARTITIONS, **_KWARGS
        )
        static.run(list(trace.events))
        assert outcome.plan_signature == static.assignment().plan_signature()

    def test_telemetry_scopes_follow_logical_shards(self, tmp_path):
        trace_out = str(tmp_path / "trace.jsonl")
        outcome = build_runtime(
            _spec(elastic="auto", telemetry=True, trace_out=trace_out)
        ).run()
        telemetry = outcome.telemetry
        assert len(telemetry._profilers) == 2 * DEFAULT_PARTITIONS
        gauges = [
            line for line in telemetry.registry.render_lines()
            if line.startswith("shard/")
        ]
        assert any("replication_factor" in line for line in gauges)
        assert any("owned_tasks" in line for line in gauges)

    def test_slowdown_injection_rejected(self):
        from repro.degrade.chaos import InjectionSpec
        from repro.runtime.factory import StreamRuntime

        runtime = StreamRuntime(
            _spec(elastic="auto"),
            chaos=(InjectionSpec(kind="slowdown", at=0.0, op_budget=10),),
        )
        with pytest.raises(SpecError, match="slowdown injection x elastic"):
            runtime.server


# ----------------------------------------------------------------------
# Shard-stats satellites
# ----------------------------------------------------------------------
class TestShardStats:
    def test_sharded_metrics_shard_stats_shape(self):
        trace = _trace()
        server = ShardedStreamingServer(trace.bbox, num_shards=2, **_KWARGS)
        metrics = server.run(list(trace.events))
        stats = metrics.shard_stats()
        assert stats["num_shards"] == 2
        assert stats["tasks_per_shard"] == list(metrics.tasks_routed)
        assert len(stats["halo_workers_per_shard"]) == 2
        assert stats["replicated_workers"] == metrics.replicated_workers
        assert stats["halo_replication_factor"] >= 1.0
        import json

        json.dumps(stats)  # stable and serializable

    def test_partitioner_stats_replication_factor(self):
        from repro.model.task import TaskSet
        from repro.shard.partitioner import SpatialPartitioner
        from repro.workloads.scenario import ScenarioConfig, build_scenario

        scenario = build_scenario(
            ScenarioConfig(num_tasks=8, num_slots=6, num_workers=20, seed=3)
        )
        shard_map = SpatialPartitioner(scenario.bbox, num_shards=4).partition(
            TaskSet(scenario.tasks),
            scenario.pool,
            {t.task_id: scenario.budget for t in scenario.tasks},
        )
        stats = shard_map.stats()
        assert stats["halo_replication_factor"] >= 1.0
        # copies / distinct workers, by definition
        entries = sum(len(pool) for pool in shard_map.shard_pools)
        assert stats["halo_replication_factor"] == pytest.approx(
            entries / len(shard_map.worker_shards)
        )

    def test_telemetry_record_shard_stats_emits_gauges_and_record(self):
        from repro.obs.layer import Telemetry
        from repro.obs.trace import read_trace

        telemetry = Telemetry(shards=2)
        telemetry.record_shard_stats(
            {
                "num_shards": 2,
                "tasks_per_shard": [3, 5],
                "halo_workers_per_shard": [4, 6],
                "replicated_workers": 2,
                "halo_replication_factor": 1.25,
            }
        )
        lines = telemetry.registry.render_lines()
        assert any("shard/0/owned_tasks = 3" in line for line in lines)
        assert any("shard/1/halo_workers = 6" in line for line in lines)
        assert any("shard/replication_factor = 1.25" in line for line in lines)
