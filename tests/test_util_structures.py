"""Tests for LazyMaxHeap, DisjointSetUnion, RangeAddMaxTree, and RNG."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.util.dsu import DisjointSetUnion
from repro.util.heaps import LazyMaxHeap
from repro.util.range_tree import RangeAddMaxTree
from repro.util.rng import RngFactory, derive_rng, make_rng, stable_digest


class TestLazyMaxHeap:
    def test_empty(self):
        heap = LazyMaxHeap()
        assert not heap
        assert heap.pop() is None
        assert heap.peek() is None

    def test_pops_in_descending_order(self):
        heap = LazyMaxHeap()
        for i, priority in enumerate([3.0, 1.0, 7.0, 5.0]):
            heap.push(priority, f"t{i}")
        assert [heap.pop()[0] for _ in range(4)] == [7.0, 5.0, 3.0, 1.0]

    def test_push_supersedes_same_token(self):
        heap = LazyMaxHeap()
        heap.push(9.0, "a")
        heap.push(2.0, "a")  # supersedes; heap has one live entry
        assert len(heap) == 1
        priority, token, _ = heap.pop()
        assert (priority, token) == (2.0, "a")
        assert heap.pop() is None

    def test_invalidate(self):
        heap = LazyMaxHeap()
        heap.push(9.0, "a")
        heap.push(5.0, "b")
        heap.invalidate("a")
        assert heap.pop()[1] == "b"
        assert not heap

    def test_tie_breaks_fifo(self):
        heap = LazyMaxHeap()
        heap.push(1.0, "first")
        heap.push(1.0, "second")
        assert heap.pop()[1] == "first"

    def test_payload_round_trip(self):
        heap = LazyMaxHeap()
        heap.push(1.0, "t", {"data": 42})
        assert heap.pop()[2] == {"data": 42}

    def test_peek_does_not_remove(self):
        heap = LazyMaxHeap()
        heap.push(1.0, "t")
        assert heap.peek()[1] == "t"
        assert len(heap) == 1


class TestDSU:
    def test_singletons(self):
        dsu = DisjointSetUnion([1, 2, 3])
        assert not dsu.connected(1, 2)
        assert len(dsu.groups()) == 3

    def test_union_find(self):
        dsu = DisjointSetUnion([1, 2, 3, 4])
        assert dsu.union(1, 2) is True
        assert dsu.union(1, 2) is False
        dsu.union(3, 4)
        assert dsu.connected(1, 2)
        assert not dsu.connected(2, 3)
        dsu.union(2, 3)
        assert dsu.connected(1, 4)

    def test_groups_sorted(self):
        dsu = DisjointSetUnion([5, 3, 1])
        dsu.union(5, 1)
        groups = dsu.groups()
        assert [1, 5] in groups and [3] in groups

    def test_add_idempotent(self):
        dsu = DisjointSetUnion()
        dsu.add("x")
        dsu.add("x")
        assert dsu.find("x") == "x"

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
    def test_matches_naive_components(self, unions):
        dsu = DisjointSetUnion(range(16))
        naive = {i: {i} for i in range(16)}
        for a, b in unions:
            dsu.union(a, b)
            if naive[a] is not naive[b]:
                merged = naive[a] | naive[b]
                for member in merged:
                    naive[member] = merged
        for a in range(16):
            for b in range(16):
                assert dsu.connected(a, b) == (naive[a] is naive[b])


class TestRangeAddMaxTree:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RangeAddMaxTree(0)

    def test_initial_zero(self):
        t = RangeAddMaxTree(8)
        assert t.max_in(1, 8) == 0.0

    def test_single_add(self):
        t = RangeAddMaxTree(8)
        t.add(3, 5, 2.5)
        assert t.max_in(1, 8) == 2.5
        assert t.max_in(1, 2) == 0.0
        assert t.value_at(4) == 2.5
        assert t.value_at(6) == 0.0

    def test_clamping(self):
        t = RangeAddMaxTree(4)
        t.add(-10, 100, 1.0)  # silently clamped to [1, 4]
        assert t.value_at(1) == 1.0 and t.value_at(4) == 1.0

    def test_empty_query(self):
        t = RangeAddMaxTree(4)
        assert t.max_in(3, 2) == float("-inf")

    @given(
        ops=st.lists(
            st.tuples(st.integers(1, 20), st.integers(1, 20), st.floats(-5, 5)),
            max_size=30,
        ),
        queries=st.lists(st.tuples(st.integers(1, 20), st.integers(1, 20)), max_size=10),
    )
    def test_matches_naive_array(self, ops, queries):
        n = 20
        tree = RangeAddMaxTree(n)
        array = [0.0] * (n + 1)
        for lo, hi, value in ops:
            lo, hi = min(lo, hi), max(lo, hi)
            tree.add(lo, hi, value)
            for i in range(lo, hi + 1):
                array[i] += value
        for lo, hi in queries:
            lo, hi = min(lo, hi), max(lo, hi)
            assert tree.max_in(lo, hi) == pytest.approx(max(array[lo : hi + 1]))


class TestRng:
    def test_make_rng_passthrough(self):
        rng = make_rng(0)
        assert make_rng(rng) is rng

    def test_derive_rng_label_independence(self):
        a = derive_rng(42, "tasks").uniform(size=5)
        b = derive_rng(42, "workers").uniform(size=5)
        assert list(a) != list(b)

    def test_derive_rng_reproducible(self):
        a = derive_rng(42, "tasks").uniform(size=5)
        b = derive_rng(42, "tasks").uniform(size=5)
        assert list(a) == list(b)

    def test_stable_digest_is_stable(self):
        assert stable_digest("tasks") == stable_digest("tasks")
        assert stable_digest("tasks") != stable_digest("workers")

    def test_factory_streams(self):
        factory = RngFactory(9)
        assert list(factory.stream("x").uniform(size=3)) == list(
            factory.stream("x").uniform(size=3)
        )
        child = factory.child("sub")
        assert list(child.stream("x").uniform(size=3)) != list(
            factory.stream("x").uniform(size=3)
        )
