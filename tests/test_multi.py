"""Tests for the multi-task solvers: MSQM, MMQM, conflicts, grouping."""

from __future__ import annotations

import pytest

from repro.core.quality import task_quality
from repro.multi.conflicts import build_independence_graph, detect_conflicts, independent_groups
from repro.multi.grouping import GroupLevelParallelSolver
from repro.multi.mmqm import MinQualityGreedy
from repro.multi.msqm import SumQualityGreedy
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution


def shared_budget(scenario):
    """Scale the per-task average budget to the whole task set."""
    return scenario.budget * len(scenario.tasks)


class TestSumQualityGreedy:
    def test_budget_respected(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        result = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        assert result.spent <= budget + 1e-9
        assert result.assignment.total_cost == pytest.approx(result.spent)

    def test_deterministic(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        a = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        b = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        assert a.plan_signature() == b.plan_signature()

    def test_indexed_equals_enumerated(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        indexed = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget,
            use_index=True,
        ).solve()
        plain = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget,
            use_index=False,
        ).solve()
        assert indexed.plan_signature() == plain.plan_signature()

    def test_qualities_match_reference(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        result = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        for task in multi_scenario.tasks:
            slots = result.assignment.executed_slots(task.task_id)
            expected = task_quality(task.num_slots, 3, {s: 1.0 for s in slots})
            assert result.qualities[task.task_id] == pytest.approx(expected)
        assert result.sum_quality == pytest.approx(sum(result.qualities.values()))

    def test_workers_not_double_booked(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        result = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        seen = set()
        tasks = {t.task_id: t for t in multi_scenario.tasks}
        for record in result.assignment:
            key = (record.worker_id, tasks[record.task_id].global_slot(record.slot))
            assert key not in seen, "worker assigned twice at one slot"
            seen.add(key)

    def test_heuristics_non_increasing(self, multi_scenario):
        result = SumQualityGreedy(
            multi_scenario.tasks,
            multi_scenario.fresh_registry(),
            budget=shared_budget(multi_scenario),
        ).solve()
        heuristics = [step.heuristic for step in result.steps]
        for earlier, later in zip(heuristics, heuristics[1:]):
            assert later <= earlier + 1e-9

    def test_conflicts_reported(self):
        scenario = build_scenario(
            ScenarioConfig(
                num_tasks=10,
                num_slots=30,
                num_workers=60,
                seed=4,
                distribution=Distribution.GAUSSIAN,
            )
        )
        result = SumQualityGreedy(
            scenario.tasks, scenario.fresh_registry(), budget=shared_budget(scenario)
        ).solve()
        assert result.conflict_count == result.counters.conflicts_detected
        assert result.conflict_count > 0

    def test_zero_budget(self, multi_scenario):
        result = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=0.0
        ).solve()
        assert len(result.assignment) == 0
        assert result.sum_quality == 0.0


class TestMinQualityGreedy:
    def test_budget_respected(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        result = MinQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        assert result.spent <= budget + 1e-9

    def test_min_quality_at_least_sum_solver(self, multi_scenario):
        """MMQM optimizes the weakest task: its qmin should not lose to
        the sum-objective solver's qmin."""
        budget = shared_budget(multi_scenario)
        mmqm = MinQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        msqm = SumQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        assert mmqm.min_quality >= msqm.min_quality - 1e-9

    def test_every_task_receives_slots_under_ample_budget(self, multi_scenario):
        result = MinQualityGreedy(
            multi_scenario.tasks,
            multi_scenario.fresh_registry(),
            budget=shared_budget(multi_scenario),
        ).solve()
        for task in multi_scenario.tasks:
            assert result.assignment.executed_slots(task.task_id)

    def test_indexed_equals_enumerated(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        indexed = MinQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget,
            use_index=True,
        ).solve()
        plain = MinQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget,
            use_index=False,
        ).solve()
        assert indexed.plan_signature() == plain.plan_signature()

    def test_deterministic(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        a = MinQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        b = MinQualityGreedy(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget
        ).solve()
        assert a.plan_signature() == b.plan_signature()


class TestConflicts:
    def _contended_scenario(self):
        return build_scenario(
            ScenarioConfig(
                num_tasks=8,
                num_slots=20,
                num_workers=30,
                seed=6,
                distribution=Distribution.GAUSSIAN,
            )
        )

    def test_detect_conflicts_finds_shared_workers(self):
        scenario = self._contended_scenario()
        records = detect_conflicts(scenario.tasks, scenario.fresh_registry())
        assert records, "contended scenario should show rank-1 conflicts"
        for record in records:
            assert len(record.task_ids) >= 2
            assert record.rank == 1

    def test_independence_graph_superset_of_rank1(self):
        scenario = self._contended_scenario()
        registry = scenario.fresh_registry()
        rank1 = detect_conflicts(scenario.tasks, registry)
        edges, ranks = build_independence_graph(scenario.tasks, registry)
        rank1_pairs = {
            (a, b)
            for record in rank1
            for i, a in enumerate(record.task_ids)
            for b in record.task_ids[i + 1 :]
        }
        assert rank1_pairs <= edges
        # Ranks follow the degree+1 rule.
        degree = {t.task_id: 0 for t in scenario.tasks}
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        for task_id, rank in ranks.items():
            assert rank == degree[task_id] + 1

    def test_groups_partition_tasks(self):
        scenario = self._contended_scenario()
        groups = independent_groups(scenario.tasks, scenario.fresh_registry())
        flattened = sorted(tid for group in groups for tid in group)
        assert flattened == sorted(t.task_id for t in scenario.tasks)

    def test_no_cross_group_rank1_conflicts(self):
        scenario = self._contended_scenario()
        registry = scenario.fresh_registry()
        groups = independent_groups(scenario.tasks, registry)
        group_of = {tid: i for i, group in enumerate(groups) for tid in group}
        for record in detect_conflicts(scenario.tasks, scenario.fresh_registry()):
            group_ids = {group_of[tid] for tid in record.task_ids}
            assert len(group_ids) == 1


class TestGroupLevelSolver:
    def test_covers_all_tasks_and_budget(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        solver = GroupLevelParallelSolver(
            multi_scenario.tasks, multi_scenario.fresh_registry(), budget=budget, cores=4
        )
        result = solver.solve()
        assert set(result.qualities) == {t.task_id for t in multi_scenario.tasks}
        assert result.spent <= budget + 1e-9
        assert result.virtual_time is not None and result.virtual_time > 0

    def test_group_sizes_sum_to_task_count(self, multi_scenario):
        solver = GroupLevelParallelSolver(
            multi_scenario.tasks,
            multi_scenario.fresh_registry(),
            budget=shared_budget(multi_scenario),
            cores=4,
        )
        assert sum(solver.group_sizes()) == len(multi_scenario.tasks)

    def test_more_cores_never_slower(self, multi_scenario):
        budget = shared_budget(multi_scenario)
        times = []
        for cores in (1, 2, 8):
            solver = GroupLevelParallelSolver(
                multi_scenario.tasks,
                multi_scenario.fresh_registry(),
                budget=budget,
                cores=cores,
            )
            times.append(solver.solve().virtual_time)
        assert times[0] >= times[1] >= times[2]
