"""Stateful (model-based) property tests with hypothesis.

Random interleavings of operations against simple reference models:

* the incremental evaluator + tree index pair, checked against
  from-scratch quality recomputation and brute-force argmax;
* the grid index under add/remove churn, checked against a dict.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
from hypothesis import strategies as st

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.quality import task_quality
from repro.core.tree_index import COST_EPSILON, TreeIndex
from repro.geo.bbox import BoundingBox
from repro.geo.grid import GridIndex
from repro.geo.point import Point

_M = 24


class _Costs:
    """Mutable cost table driven by the state machine."""

    def __init__(self, m):
        self.table = {slot: 1.0 + (slot % 5) * 0.7 for slot in range(1, m + 1)}

    def cost(self, slot):
        return self.table.get(slot)

    def reliability(self, slot):
        return 1.0


class EvaluatorIndexMachine(RuleBasedStateMachine):
    """Drive evaluator + index through executions and cost changes."""

    def __init__(self):
        super().__init__()
        self.costs = _Costs(_M)
        self.ev = TemporalQualityEvaluator(_M, 2)
        self.index = TreeIndex(self.ev, self.costs, ts=3)
        self.executed: dict[int, float] = {}

    @rule(slot=st.integers(1, _M))
    def execute_slot(self, slot):
        if slot in self.executed or self.costs.cost(slot) is None:
            return
        window = self.ev.affected_window(slot)
        self.ev.execute(slot)
        self.index.refresh_range(*window)
        self.executed[slot] = 1.0

    @rule(slot=st.integers(1, _M), new_cost=st.floats(0.1, 9.0))
    def change_cost(self, slot, new_cost):
        if slot not in self.costs.table:
            return
        self.costs.table[slot] = new_cost
        self.index.refresh_range(slot, slot)

    @rule(remaining=st.floats(0.5, 20.0))
    def find_best_matches_brute_force(self, remaining):
        got = self.index.find_best(remaining)
        best = None
        for slot in range(1, _M + 1):
            if self.ev.is_executed(slot):
                continue
            cost = self.costs.cost(slot)
            if cost is None or cost > remaining + 1e-12:
                continue
            gain = self.ev.gain_if_executed(slot)
            if gain <= 0.0:
                continue
            heur = gain / max(cost, COST_EPSILON)
            if best is None or heur > best[1] or (heur == best[1] and slot < best[0]):
                best = (slot, heur)
        if best is None:
            assert got is None
        else:
            assert got is not None
            assert got.slot == best[0]
            assert got.heuristic == pytest.approx(best[1])

    @invariant()
    def quality_matches_reference(self):
        assert self.ev.quality == pytest.approx(task_quality(_M, 2, self.executed))


class GridIndexMachine(RuleBasedStateMachine):
    """Grid index vs a plain dict under add/remove churn."""

    def __init__(self):
        super().__init__()
        self.bbox = BoundingBox.square(50.0)
        self.index = GridIndex(self.bbox)
        self.model: dict[int, Point] = {}

    @rule(key=st.integers(0, 30), x=st.floats(0, 50), y=st.floats(0, 50))
    def add(self, key, x, y):
        point = Point(x, y)
        self.index.add(key, point)
        self.model[key] = point

    @rule(key=st.integers(0, 30))
    def remove(self, key):
        if key in self.model:
            self.index.remove(key)
            del self.model[key]
        else:
            with pytest.raises(KeyError):
                self.index.remove(key)

    @rule(x=st.floats(0, 50), y=st.floats(0, 50), k=st.integers(1, 4))
    def knn_matches_model(self, x, y, k):
        query = Point(x, y)
        got = [d for _, d in self.index.k_nearest(query, k)]
        expected = sorted(query.distance_to(p) for p in self.model.values())[:k]
        assert got == pytest.approx(expected)

    @invariant()
    def sizes_agree(self):
        assert len(self.index) == len(self.model)


TestEvaluatorIndexMachine = EvaluatorIndexMachine.TestCase
TestEvaluatorIndexMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestGridIndexMachine = GridIndexMachine.TestCase
TestGridIndexMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
