"""Tests for the batch-arrival server."""

from __future__ import annotations

import pytest

from repro.engine.batches import BatchTCSCServer
from repro.errors import ConfigurationError
from repro.geo.point import Point
from repro.model.task import Task, TaskSet
from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        ScenarioConfig(num_tasks=6, num_slots=25, num_workers=60, seed=19)
    )


def split_batches(scenario):
    tasks = list(scenario.tasks)
    return TaskSet(tasks[:3]), TaskSet(tasks[3:])


class TestBatchServer:
    def test_rounds_accumulate(self, scenario):
        server = BatchTCSCServer(scenario.pool, scenario.bbox)
        first, second = split_batches(scenario)
        budget = scenario.budget * 3
        r1 = server.process_batch(first, budget)
        r2 = server.process_batch(second, budget)
        assert server.rounds == 2
        assert r1.round_id == 0 and r2.round_id == 1
        assert r2.cumulative_spent == pytest.approx(r1.result.spent + r2.result.spent)
        assert server.total_spent == pytest.approx(r2.cumulative_spent)

    def test_duplicate_task_ids_rejected(self, scenario):
        server = BatchTCSCServer(scenario.pool, scenario.bbox)
        first, _ = split_batches(scenario)
        server.process_batch(first, scenario.budget * 3)
        with pytest.raises(ConfigurationError):
            server.process_batch(first, scenario.budget * 3)

    def test_unknown_objective(self, scenario):
        server = BatchTCSCServer(scenario.pool, scenario.bbox)
        first, _ = split_batches(scenario)
        with pytest.raises(ConfigurationError):
            server.process_batch(first, 1.0, objective="median")

    def test_later_batches_see_consumed_workers(self, scenario):
        """A batch assigned after another pays at least as much for the
        same task as it would on a fresh registry."""
        first, second = split_batches(scenario)
        budget = scenario.budget * 3

        sequential = BatchTCSCServer(scenario.pool, scenario.bbox)
        sequential.process_batch(first, budget)
        later = sequential.process_batch(second, budget, objective="sum")

        fresh = BatchTCSCServer(scenario.pool, scenario.bbox)
        alone = fresh.process_batch(second, budget, objective="sum")

        # Same budget, but contention can only reduce achievable quality.
        assert later.result.sum_quality <= alone.result.sum_quality + 1e-9

    def test_min_objective_round(self, scenario):
        server = BatchTCSCServer(scenario.pool, scenario.bbox)
        first, _ = split_batches(scenario)
        report = server.process_batch(first, scenario.budget * 3, objective="min")
        assert report.result.min_quality > 0.0

    def test_no_double_booking_across_rounds(self, scenario):
        server = BatchTCSCServer(scenario.pool, scenario.bbox)
        first, second = split_batches(scenario)
        budget = scenario.budget * 3
        r1 = server.process_batch(first, budget)
        r2 = server.process_batch(second, budget)
        tasks = {t.task_id: t for t in scenario.tasks}
        seen = set()
        for result in (r1.result, r2.result):
            for record in result.assignment:
                key = (record.worker_id, tasks[record.task_id].global_slot(record.slot))
                assert key not in seen
                seen.add(key)

    def test_workers_committed_monotone(self, scenario):
        server = BatchTCSCServer(scenario.pool, scenario.bbox)
        first, second = split_batches(scenario)
        budget = scenario.budget * 3
        r1 = server.process_batch(first, budget)
        r2 = server.process_batch(second, budget)
        assert r2.workers_committed >= r1.workers_committed
