"""Tests for the tree-structured order-k Voronoi index (Approx*'s engine).

The central property: :meth:`TreeIndex.find_best` returns exactly the
same slot as exhaustive enumeration — the upper bounds are sound and
ties break identically — across random executed sets, costs, and
budgets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.tree_index import COST_EPSILON, TreeIndex
from repro.errors import ConfigurationError


class FakeCosts:
    """Minimal cost table: slot -> cost (None = unassignable)."""

    def __init__(self, costs: dict[int, float], reliabilities: dict[int, float] | None = None):
        self._costs = costs
        self._rels = reliabilities or {}

    def cost(self, slot):
        return self._costs.get(slot)

    def reliability(self, slot):
        return self._rels.get(slot, 1.0)


def brute_force_best(ev, costs, remaining):
    """Reference argmax of gain/cost with the library tie-break."""
    best = None
    for slot in range(1, ev.m + 1):
        if ev.is_executed(slot):
            continue
        cost = costs.cost(slot)
        if cost is None or cost > remaining + 1e-12:
            continue
        gain = ev.gain_if_executed(slot, costs.reliability(slot))
        if gain <= 0.0:
            continue
        heur = gain / max(cost, COST_EPSILON)
        if best is None or heur > best[3] or (heur == best[3] and slot < best[0]):
            best = (slot, gain, cost, heur)
    return best


class TestConstruction:
    def test_rejects_bad_ts(self):
        ev = TemporalQualityEvaluator(10, 2)
        with pytest.raises(ConfigurationError):
            TreeIndex(ev, FakeCosts({}), ts=0)

    def test_candidate_count(self):
        ev = TemporalQualityEvaluator(10, 2)
        index = TreeIndex(ev, FakeCosts({s: 1.0 for s in range(1, 11)}))
        assert index.candidate_count == 10
        window = ev.affected_window(4)
        ev.execute(4)
        index.refresh_range(*window)
        assert index.candidate_count == 9

    def test_unassignable_slots_excluded(self):
        ev = TemporalQualityEvaluator(10, 2)
        index = TreeIndex(ev, FakeCosts({1: 1.0}))
        assert index.candidate_count == 1

    def test_node_count_decreases_with_ts(self):
        ev = TemporalQualityEvaluator(64, 2)
        costs = FakeCosts({s: 1.0 for s in range(1, 65)})
        small = TreeIndex(ev, costs, ts=2).node_count
        big = TreeIndex(ev, costs, ts=16).node_count
        assert big < small


class TestFindBest:
    def test_empty_index_returns_none(self):
        ev = TemporalQualityEvaluator(10, 2)
        index = TreeIndex(ev, FakeCosts({}))
        assert index.find_best(100.0) is None

    def test_budget_excludes_expensive_slots(self):
        ev = TemporalQualityEvaluator(11, 2)
        costs = FakeCosts({6: 50.0, 1: 1.0})
        index = TreeIndex(ev, costs)
        best = index.find_best(10.0)
        assert best.slot == 1

    def test_no_affordable_returns_none(self):
        ev = TemporalQualityEvaluator(10, 2)
        index = TreeIndex(ev, FakeCosts({5: 100.0}))
        assert index.find_best(1.0) is None

    def test_matches_brute_force_on_empty_set(self):
        ev = TemporalQualityEvaluator(20, 3)
        costs = FakeCosts({s: float(s) for s in range(1, 21)})
        index = TreeIndex(ev, costs)
        best = index.find_best(1000.0)
        expected = brute_force_best(ev, costs, 1000.0)
        assert (best.slot, best.heuristic) == (expected[0], pytest.approx(expected[3]))

    @settings(deadline=None, max_examples=50)
    @given(
        m=st.integers(8, 40),
        executed=st.sets(st.integers(1, 40), max_size=10),
        seed=st.integers(0, 10_000),
        ts=st.sampled_from([1, 2, 4, 8]),
        k=st.integers(1, 4),
    )
    def test_matches_brute_force_random(self, m, executed, seed, ts, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        executed = {e for e in executed if e <= m}
        cost_map = {
            s: round(float(rng.uniform(0.5, 10.0)), 3)
            for s in range(1, m + 1)
            if rng.uniform() > 0.1  # ~10% unassignable
        }
        costs = FakeCosts(cost_map)
        ev = TemporalQualityEvaluator(m, k)
        index = TreeIndex(ev, costs, ts=ts)
        for e in sorted(executed):
            window = ev.affected_window(e)
            ev.execute(e)
            index.refresh_range(*window)
        remaining = float(rng.uniform(1.0, 15.0))
        got = index.find_best(remaining)
        expected = brute_force_best(ev, costs, remaining)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got.slot == expected[0]
            assert got.gain == pytest.approx(expected[1])
            assert got.heuristic == pytest.approx(expected[3])

    def test_with_reliabilities(self):
        ev = TemporalQualityEvaluator(15, 2)
        cost_map = {s: 1.0 + s * 0.1 for s in range(1, 16)}
        rels = {s: 0.5 + 0.03 * s for s in range(1, 16)}
        costs = FakeCosts(cost_map, rels)
        index = TreeIndex(ev, costs)
        got = index.find_best(100.0)
        expected = brute_force_best(ev, costs, 100.0)
        assert got.slot == expected[0]


class TestIncrementalConsistency:
    def test_greedy_sequence_matches_brute_force(self):
        """A full greedy run driven by the index matches enumeration."""
        ev_a = TemporalQualityEvaluator(30, 3)
        ev_b = TemporalQualityEvaluator(30, 3)
        cost_map = {s: 1.0 + (s * 7 % 5) for s in range(1, 31)}
        costs = FakeCosts(cost_map)
        index = TreeIndex(ev_a, costs, ts=4)
        for _ in range(12):
            got = index.find_best(1e9)
            expected = brute_force_best(ev_b, costs, 1e9)
            if expected is None:
                assert got is None
                break
            assert got.slot == expected[0]
            window = ev_a.affected_window(got.slot)
            ev_a.execute(got.slot)
            index.refresh_range(*window)
            ev_b.execute(expected[0])

    def test_pruning_counters_accumulate(self):
        ev = TemporalQualityEvaluator(60, 3)
        costs = FakeCosts({s: 1.0 for s in range(1, 61)})
        index = TreeIndex(ev, costs, ts=4)
        for _ in range(10):
            best = index.find_best(1e9)
            window = ev.affected_window(best.slot)
            ev.execute(best.slot)
            index.refresh_range(*window)
        counters = index.counters
        assert counters.candidates_total > 0
        assert 0.0 <= counters.pruning_ratio <= 1.0

    def test_refresh_range_reads_cost_changes(self):
        """Cost providers mutate in multi-task runs; refresh re-reads."""
        ev = TemporalQualityEvaluator(10, 2)
        cost_map = {s: 1.0 for s in range(1, 11)}
        costs = FakeCosts(cost_map)
        index = TreeIndex(ev, costs)
        cost_map[3] = 0.01  # slot 3 becomes extremely cheap
        index.refresh_range(3, 3)
        assert index.find_best(1e9).slot == 3
