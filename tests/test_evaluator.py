"""Tests for the incremental TemporalQualityEvaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.quality import task_quality
from repro.errors import ConfigurationError


class TestBasics:
    def test_initial_state(self):
        ev = TemporalQualityEvaluator(10, 3)
        assert ev.quality == 0.0
        assert ev.executed_count == 0
        assert ev.p(5) == 0.0
        assert ev.rho_err(5) == pytest.approx(1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TemporalQualityEvaluator(2, 3)
        with pytest.raises(ConfigurationError):
            TemporalQualityEvaluator(10, 0)

    def test_execute_marks_slot(self):
        ev = TemporalQualityEvaluator(10, 3)
        ev.execute(4)
        assert ev.is_executed(4)
        assert ev.p(4) == pytest.approx(0.1)
        assert ev.rho_err(4) == 0.0

    def test_double_execute_rejected(self):
        ev = TemporalQualityEvaluator(10, 3)
        ev.execute(4)
        with pytest.raises(ConfigurationError):
            ev.execute(4)
        with pytest.raises(ConfigurationError):
            ev.gain_if_executed(4)

    def test_out_of_range_slot(self):
        ev = TemporalQualityEvaluator(10, 3)
        with pytest.raises(ConfigurationError):
            ev.execute(0)
        with pytest.raises(ConfigurationError):
            ev.p(11)

    def test_reliability_validated(self):
        ev = TemporalQualityEvaluator(10, 3)
        with pytest.raises(ConfigurationError):
            ev.execute(3, reliability=1.5)

    def test_execute_returns_changes(self):
        ev = TemporalQualityEvaluator(10, 2)
        changes = ev.execute(5)
        changed = {c.slot for c in changes}
        assert 5 in changed
        # All other slots gained a first neighbour.
        assert changed == set(range(1, 11))
        total_delta = sum(c.quality_delta for c in changes)
        assert total_delta == pytest.approx(ev.quality)


class TestAgainstReference:
    def test_matches_reference_formula(self):
        ev = TemporalQualityEvaluator(100, 2)
        ev.execute(2)
        ev.execute(4)
        # Paper's example: rho(tau(1)) = 0.02.
        assert ev.rho_err(1) == pytest.approx(0.02)
        assert ev.quality == pytest.approx(task_quality(100, 2, {2: 1.0, 4: 1.0}))

    @settings(deadline=None, max_examples=40)
    @given(
        slots=st.lists(st.integers(1, 25), min_size=1, max_size=12, unique=True),
        k=st.integers(1, 4),
    )
    def test_incremental_equals_batch(self, slots, k):
        """Incremental updates agree with the from-scratch formula."""
        ev = TemporalQualityEvaluator(25, k)
        for slot in slots:
            ev.execute(slot)
        expected = task_quality(25, k, {s: 1.0 for s in slots})
        assert ev.quality == pytest.approx(expected)
        assert ev.recompute_quality() == pytest.approx(expected)

    @settings(deadline=None, max_examples=40)
    @given(
        slots=st.lists(st.integers(1, 25), min_size=1, max_size=10, unique=True),
        lams=st.lists(st.floats(0.1, 1.0), min_size=10, max_size=10),
        k=st.integers(1, 3),
    )
    def test_incremental_with_reliability(self, slots, lams, k):
        ev = TemporalQualityEvaluator(25, k)
        executed = {}
        for slot, lam in zip(slots, lams):
            ev.execute(slot, lam)
            executed[slot] = lam
        assert ev.quality == pytest.approx(task_quality(25, k, executed))


class TestGains:
    def test_gain_equals_commit_delta(self):
        ev = TemporalQualityEvaluator(30, 3)
        ev.execute(10)
        gain = ev.gain_if_executed(20)
        before = ev.quality
        ev.execute(20)
        assert ev.quality - before == pytest.approx(gain)

    def test_full_rescan_equals_local(self):
        ev = TemporalQualityEvaluator(30, 3)
        for slot in (4, 15, 27):
            ev.execute(slot)
        for candidate in (1, 8, 20, 30):
            assert ev.gain_full_rescan(candidate) == pytest.approx(
                ev.gain_if_executed(candidate)
            )

    def test_gain_positive_under_unit_reliability(self):
        ev = TemporalQualityEvaluator(30, 3)
        ev.execute(5)
        assert ev.gain_if_executed(20) > 0.0

    @settings(deadline=None, max_examples=40)
    @given(
        slots=st.lists(st.integers(1, 30), max_size=8, unique=True),
        candidate=st.integers(1, 30),
        k=st.integers(1, 4),
    )
    def test_gain_matches_quality_difference(self, slots, candidate, k):
        if candidate in slots:
            return
        executed = {s: 1.0 for s in slots}
        before = task_quality(30, k, executed)
        after = task_quality(30, k, {**executed, candidate: 1.0})
        ev = TemporalQualityEvaluator(30, k)
        for s in slots:
            ev.execute(s)
        assert ev.gain_if_executed(candidate) == pytest.approx(after - before)


class TestAffectedWindow:
    def test_window_contains_slot(self):
        ev = TemporalQualityEvaluator(50, 3)
        lo, hi = ev.affected_window(25)
        assert lo <= 25 <= hi

    def test_empty_set_affects_everything(self):
        ev = TemporalQualityEvaluator(50, 3)
        assert ev.affected_window(25) == (1, 50)

    @settings(deadline=None, max_examples=40)
    @given(
        slots=st.lists(st.integers(1, 40), min_size=1, max_size=12, unique=True),
        new=st.integers(1, 40),
        k=st.integers(1, 3),
    )
    def test_slots_outside_window_unchanged(self, slots, new, k):
        """Executing `new` must not change p outside its window."""
        if new in slots:
            return
        ev = TemporalQualityEvaluator(40, k)
        for s in slots:
            ev.execute(s)
        lo, hi = ev.affected_window(new)
        outside_before = {u: ev.p(u) for u in range(1, 41) if not lo <= u <= hi}
        ev.execute(new)
        # Oracle recomputation for every outside slot.
        for u, old in outside_before.items():
            assert ev._p_of(u) == pytest.approx(old), f"slot {u} changed outside window"


class TestNeighborQueries:
    def test_kth_nn_distance(self):
        ev = TemporalQualityEvaluator(30, 2)
        assert ev.kth_nn_distance(10) == 30  # fewer than k neighbours
        ev.execute(8)
        ev.execute(13)
        assert ev.kth_nn_distance(10) == 3

    def test_farthest_neighbor(self):
        ev = TemporalQualityEvaluator(30, 2)
        assert ev.farthest_neighbor(10) is None
        ev.execute(8, reliability=0.5)
        ev.execute(13, reliability=0.9)
        dist, lam = ev.farthest_neighbor(10)
        assert (dist, lam) == (3, 0.9)

    def test_knn_of(self):
        ev = TemporalQualityEvaluator(30, 2)
        for s in (5, 9, 20):
            ev.execute(s)
        assert ev.knn_of(7) == [5, 9]
