"""Tests for the single-task solvers (Algorithm 1, Approx, Approx*)."""

from __future__ import annotations

import math

import pytest

from repro.core.baselines import OptimalSolver, RandomAssignmentSolver
from repro.core.greedy import (
    IndexedSingleTaskGreedy,
    SingleTaskGreedy,
    single_slot_quality,
    single_slot_quality_table,
)
from repro.core.quality import task_quality
from repro.engine.costs import SingleTaskCostTable
from repro.errors import ConfigurationError
from repro.workloads.scenario import ScenarioConfig, build_scenario


class TestSingleSlotQuality:
    def test_table_matches_direct(self):
        m, k = 25, 3
        table = single_slot_quality_table(m, k)
        for h in (1, 7, 13, 25):
            assert table[h] == pytest.approx(single_slot_quality(m, k, h))

    def test_matches_task_quality(self):
        m, k = 20, 2
        for h in (1, 10, 20):
            assert single_slot_quality(m, k, h) == pytest.approx(
                task_quality(m, k, {h: 1.0})
            )

    def test_middle_is_best(self):
        m = 31
        table = single_slot_quality_table(m, 3)
        assert max(range(1, m + 1), key=lambda h: table[h]) == 16

    def test_reliability_scales_down(self):
        assert single_slot_quality(20, 3, 10, 0.5) < single_slot_quality(20, 3, 10, 1.0)

    def test_rejects_bad_slot(self):
        with pytest.raises(ConfigurationError):
            single_slot_quality(10, 3, 11)


class TestSolverEquivalence:
    def test_all_three_produce_identical_plans(self, small_scenario, small_costs):
        task = small_scenario.single_task
        budget = small_scenario.budget
        full = SingleTaskGreedy(task, small_costs, budget=budget, strategy="full").solve()
        local = SingleTaskGreedy(task, small_costs, budget=budget, strategy="local").solve()
        indexed = IndexedSingleTaskGreedy(task, small_costs, budget=budget).solve()
        assert full.assignment.plan_signature() == local.assignment.plan_signature()
        assert local.assignment.plan_signature() == indexed.assignment.plan_signature()
        assert full.quality == pytest.approx(indexed.quality)

    def test_equivalence_across_ts(self, small_scenario, small_costs):
        task = small_scenario.single_task
        budget = small_scenario.budget
        reference = None
        for ts in (1, 2, 4, 9):
            result = IndexedSingleTaskGreedy(task, small_costs, budget=budget, ts=ts).solve()
            if reference is None:
                reference = result.assignment.plan_signature()
            else:
                assert result.assignment.plan_signature() == reference

    def test_equivalence_across_k(self, small_scenario, small_costs):
        task = small_scenario.single_task
        for k in (1, 2, 5):
            local = SingleTaskGreedy(
                task, small_costs, k=k, budget=small_scenario.budget, strategy="local"
            ).solve()
            indexed = IndexedSingleTaskGreedy(
                task, small_costs, k=k, budget=small_scenario.budget
            ).solve()
            assert local.assignment.plan_signature() == indexed.assignment.plan_signature()

    def test_medium_scenario_equivalence(self, medium_scenario, medium_costs):
        task = medium_scenario.single_task
        budget = medium_scenario.budget
        local = SingleTaskGreedy(task, medium_costs, budget=budget, strategy="local").solve()
        indexed = IndexedSingleTaskGreedy(task, medium_costs, budget=budget).solve()
        assert local.assignment.plan_signature() == indexed.assignment.plan_signature()


class TestSolverInvariants:
    def test_budget_respected(self, small_scenario, small_costs):
        result = IndexedSingleTaskGreedy(
            small_scenario.single_task, small_costs, budget=small_scenario.budget
        ).solve()
        assert result.spent <= small_scenario.budget + 1e-9
        assert result.assignment.total_cost == pytest.approx(result.spent)

    def test_quality_matches_reference(self, small_scenario, small_costs):
        result = IndexedSingleTaskGreedy(
            small_scenario.single_task, small_costs, budget=small_scenario.budget
        ).solve()
        executed = {
            r.slot: small_costs.reliability(r.slot) for r in result.assignment
        }
        expected = task_quality(small_scenario.single_task.num_slots, 3, executed)
        assert result.quality == pytest.approx(expected)

    def test_heuristics_non_increasing(self, small_scenario, small_costs):
        """Submodularity + static costs => the greedy stream's chosen
        heuristic values never increase."""
        result = IndexedSingleTaskGreedy(
            small_scenario.single_task, small_costs, budget=small_scenario.budget
        ).solve()
        heuristics = [step.heuristic for step in result.steps]
        assert len(heuristics) > 2
        for earlier, later in zip(heuristics, heuristics[1:]):
            assert later <= earlier + 1e-9

    def test_zero_budget_yields_empty(self, small_scenario, small_costs):
        result = IndexedSingleTaskGreedy(
            small_scenario.single_task, small_costs, budget=0.0
        ).solve()
        assert len(result.assignment) == 0
        assert result.quality == 0.0

    def test_huge_budget_executes_everything(self, small_scenario, small_costs):
        result = IndexedSingleTaskGreedy(
            small_scenario.single_task, small_costs, budget=1e12
        ).solve()
        assert len(result.assignment) == len(small_costs.assignable_slots)

    def test_quality_increases_with_budget(self, small_scenario, small_costs):
        qualities = []
        for fraction in (0.1, 0.3, 0.6):
            result = IndexedSingleTaskGreedy(
                small_scenario.single_task,
                small_costs,
                budget=fraction * small_costs.total_cost,
            ).solve()
            qualities.append(result.quality)
        assert qualities == sorted(qualities)

    def test_rejects_unknown_strategy(self, small_scenario, small_costs):
        with pytest.raises(ConfigurationError):
            SingleTaskGreedy(
                small_scenario.single_task,
                small_costs,
                budget=1.0,
                strategy="warp-speed",
            )

    def test_counters_populated(self, small_scenario, small_costs):
        result = IndexedSingleTaskGreedy(
            small_scenario.single_task, small_costs, budget=small_scenario.budget
        ).solve()
        assert result.counters.iterations == len(result.steps)
        assert result.counters.knn_queries > 0
        assert result.counters.tree_node_updates > 0


class TestApproximationGuarantee:
    def _tiny_instance(self, seed):
        scenario = build_scenario(
            ScenarioConfig(num_tasks=1, num_slots=10, num_workers=120, seed=seed)
        )
        costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
        budget = 0.5 * costs.total_cost
        return scenario.single_task, costs, budget

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_greedy_within_guarantee_of_opt(self, seed):
        """q(greedy) >= (1 - 1/sqrt(e)) q(OPT) — usually far better."""
        task, costs, budget = self._tiny_instance(seed)
        greedy = SingleTaskGreedy(task, costs, budget=budget, strategy="local").solve()
        opt = OptimalSolver(task, costs, budget=budget).solve()
        ratio = 1.0 - 1.0 / math.sqrt(math.e)
        assert greedy.quality >= ratio * opt.quality - 1e-9
        assert greedy.quality <= opt.quality + 1e-9

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_greedy_beats_random_average(self, seed):
        task, costs, budget = self._tiny_instance(seed)
        greedy = SingleTaskGreedy(task, costs, budget=budget, strategy="local").solve()
        rand = RandomAssignmentSolver(task, costs, budget=budget, seed=seed).run_trials(10)
        assert greedy.quality >= rand.avg - 1e-9


class TestLineThree:
    def test_single_best_used_when_stream_is_worse(self):
        """With budget for exactly one expensive-but-central subtask, the
        final answer must be max(single best, stream)."""
        scenario = build_scenario(
            ScenarioConfig(num_tasks=1, num_slots=15, num_workers=150, seed=13)
        )
        costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
        cheapest = min(costs.cost(s) for s in costs.assignable_slots)
        result = SingleTaskGreedy(
            scenario.single_task, costs, budget=cheapest, strategy="local"
        ).solve()
        # The best single affordable subtask is at least as good as the
        # stream under the same budget.
        assert len(result.assignment) <= 1
        if result.steps:
            assert result.quality > 0.0
