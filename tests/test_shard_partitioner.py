"""Tests for the spatial partitioner and its halo-closure guarantee."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.shard.partitioner import HALO_AUTO, SpatialPartitioner
from repro.shard.server import compute_budgets
from repro.workloads.scenario import ScenarioConfig, build_scenario


def _partition(scenario, num_shards, **kwargs):
    budgets = compute_budgets(scenario.tasks, scenario.pool, scenario.bbox)
    partitioner = SpatialPartitioner(
        scenario.bbox, num_shards=num_shards, **kwargs
    )
    return partitioner.partition(scenario.tasks, scenario.pool, budgets), budgets


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            SpatialPartitioner(BoundingBox.square(10), num_shards=0)

    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError):
            SpatialPartitioner(BoundingBox.square(10), num_shards=2, method="voronoi")

    def test_rejects_bad_halo(self):
        with pytest.raises(ConfigurationError):
            SpatialPartitioner(BoundingBox.square(10), num_shards=2, halo="magic")
        with pytest.raises(ConfigurationError):
            SpatialPartitioner(BoundingBox.square(10), num_shards=2, halo=-1.0)

    def test_auto_halo_needs_budgets(self, multi_scenario):
        partitioner = SpatialPartitioner(multi_scenario.bbox, num_shards=2)
        with pytest.raises(ConfigurationError):
            partitioner.partition(multi_scenario.tasks, multi_scenario.pool, {})

    def test_kd_has_no_location_router(self):
        partitioner = SpatialPartitioner(
            BoundingBox.square(10), num_shards=2, method="kd"
        )
        with pytest.raises(ConfigurationError):
            partitioner.shard_of_location(Point(1, 1))


class TestAssignment:
    def test_every_task_owned_once(self, multi_scenario):
        for method in ("grid", "kd"):
            shard_map, _ = _partition(multi_scenario, 4, method=method)
            assert set(shard_map.shard_of_task) == {
                t.task_id for t in multi_scenario.tasks
            }
            assert all(0 <= s < 4 for s in shard_map.shard_of_task.values())
            flattened = [tid for tasks in shard_map.shard_tasks for tid in tasks]
            assert sorted(flattened) == sorted(shard_map.shard_of_task)

    def test_single_shard_owns_everything(self, multi_scenario):
        shard_map, _ = _partition(multi_scenario, 1)
        assert set(shard_map.shard_of_task.values()) == {0}

    def test_shard_task_lists_are_canonical(self, multi_scenario):
        shard_map, _ = _partition(multi_scenario, 4)
        for tasks in shard_map.shard_tasks:
            assert tasks == sorted(tasks)

    def test_grid_cells_cover_all_shards(self):
        partitioner = SpatialPartitioner(
            BoundingBox.square(100), num_shards=8, cells_per_side=4
        )
        owners = {
            partitioner.shard_of_cell(col, row)
            for col in range(4)
            for row in range(4)
        }
        assert owners == set(range(8))

    def test_kd_balances_task_counts(self):
        scenario = build_scenario(
            ScenarioConfig(num_tasks=16, num_slots=8, num_workers=50, seed=3)
        )
        shard_map, _ = _partition(scenario, 4, method="kd")
        sizes = [len(tasks) for tasks in shard_map.shard_tasks]
        assert sum(sizes) == 16
        assert max(sizes) - min(sizes) <= 1

    def test_region_distance_zero_inside(self):
        partitioner = SpatialPartitioner(
            BoundingBox.square(100), num_shards=4, cells_per_side=4
        )
        p = Point(5.0, 5.0)
        shard = partitioner.shard_of_location(p)
        assert partitioner.shard_region_distance(shard, p) == 0.0
        others = [s for s in range(4) if s != shard]
        assert any(partitioner.shard_region_distance(s, p) > 0 for s in others)


class TestHaloClosure:
    """The load-bearing property: for any shard count and grid
    resolution, a task's shard halo contains every worker its solve
    could ever afford — the feasible worker set is preserved."""

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("cells_per_side", [2, 5, 8])
    def test_affordable_workers_fully_visible(self, num_shards, cells_per_side):
        scenario = build_scenario(
            ScenarioConfig(num_tasks=6, num_slots=12, num_workers=120, seed=17)
        )
        shard_map, budgets = _partition(
            scenario, num_shards, cells_per_side=cells_per_side
        )
        for task in scenario.tasks:
            shard = shard_map.shard_of_task[task.task_id]
            pool = shard_map.shard_pools[shard]
            halo = {w.worker_id: w for w in pool}
            budget = budgets[task.task_id]
            for local in task.slots:
                gslot = task.global_slot(local)
                for worker in scenario.pool:
                    loc = worker.availability.get(gslot)
                    if loc is None or task.loc.distance_to(loc) > budget:
                        continue
                    replica = halo.get(worker.worker_id)
                    assert replica is not None, (task.task_id, worker.worker_id)
                    assert replica.availability.get(gslot) == loc
                    assert replica.reliability == worker.reliability

    @pytest.mark.parametrize("method", ["grid", "kd"])
    def test_footprint_matches_halo_rule(self, multi_scenario, method):
        shard_map, budgets = _partition(multi_scenario, 4, method=method)
        for task in multi_scenario.tasks:
            footprint = shard_map.footprints[task.task_id]
            radius = footprint.radius
            assert radius == pytest.approx(budgets[task.task_id], abs=1e-6)
            expected = set()
            for local in task.slots:
                gslot = task.global_slot(local)
                for worker in multi_scenario.pool:
                    loc = worker.availability.get(gslot)
                    if loc is not None and task.loc.distance_to(loc) <= radius:
                        expected.add((worker.worker_id, gslot))
            assert footprint.pairs == expected

    def test_fixed_radius_halos_shrink(self, multi_scenario):
        wide, _ = _partition(multi_scenario, 2, halo=50.0)
        narrow, _ = _partition(multi_scenario, 2, halo=5.0)
        for shard in range(2):
            wide_pairs = {
                (w.worker_id, s)
                for w in wide.shard_pools[shard]
                for s in w.availability
            }
            narrow_pairs = {
                (w.worker_id, s)
                for w in narrow.shard_pools[shard]
                for s in w.availability
            }
            assert narrow_pairs <= wide_pairs

    def test_worker_shards_tracks_replication(self, multi_scenario):
        shard_map, _ = _partition(multi_scenario, 4)
        for wid, shards in shard_map.worker_shards.items():
            assert shards == tuple(sorted(shards))
            for shard in shards:
                assert any(
                    w.worker_id == wid for w in shard_map.shard_pools[shard]
                )
        stats = shard_map.stats()
        assert stats["replicated_workers"] == len(shard_map.replicated_worker_ids)


class TestDeterminism:
    @pytest.mark.parametrize("method", ["grid", "kd"])
    def test_same_inputs_same_map(self, multi_scenario, method):
        first, _ = _partition(multi_scenario, 4, method=method)
        second, _ = _partition(multi_scenario, 4, method=method)
        assert first.shard_of_task == second.shard_of_task
        assert first.shard_tasks == second.shard_tasks
        assert first.worker_shards == second.worker_shards
        for task_id in first.footprints:
            assert first.footprints[task_id].pairs == second.footprints[task_id].pairs
        for pool_a, pool_b in zip(first.shard_pools, second.shard_pools):
            assert [(w.worker_id, w.availability) for w in pool_a] == [
                (w.worker_id, w.availability) for w in pool_b
            ]

    def test_same_seed_same_scenario_same_map(self):
        maps = []
        for _ in range(2):
            scenario = build_scenario(
                ScenarioConfig(num_tasks=5, num_slots=10, num_workers=80, seed=23)
            )
            shard_map, _ = _partition(scenario, 3)
            maps.append(shard_map)
        assert maps[0].shard_of_task == maps[1].shard_of_task
        assert maps[0].stats() == maps[1].stats()
