"""End-to-end tests: the TCSC server and the physical-quality link."""

from __future__ import annotations

import pytest

from repro.engine.field import SpatioTemporalField
from repro.engine.server import TCSCServer
from repro.errors import ConfigurationError
from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig(num_tasks=1, num_slots=50, num_workers=250, seed=21))


@pytest.fixture(scope="module")
def multi_scenario_srv():
    return build_scenario(ScenarioConfig(num_tasks=5, num_slots=30, num_workers=200, seed=22))


class TestSingleTaskServer:
    def test_approx_star_matches_approx(self, scenario):
        server = TCSCServer(scenario.pool, scenario.bbox)
        star = server.assign_single(scenario.single_task, scenario.budget, policy="approx_star")
        plain = server.assign_single(scenario.single_task, scenario.budget, policy="approx")
        assert star.assignment.plan_signature() == plain.assignment.plan_signature()
        assert star.sum_quality == pytest.approx(plain.sum_quality)

    def test_approx_beats_random(self, scenario):
        server = TCSCServer(scenario.pool, scenario.bbox)
        approx = server.assign_single(scenario.single_task, scenario.budget)
        rand = server.assign_single(
            scenario.single_task, scenario.budget, policy="random", seed=5
        )
        assert approx.sum_quality >= rand.sum_quality

    def test_unknown_policy(self, scenario):
        server = TCSCServer(scenario.pool, scenario.bbox)
        with pytest.raises(ConfigurationError):
            server.assign_single(scenario.single_task, 1.0, policy="magic")

    def test_report_costs_consistent(self, scenario):
        server = TCSCServer(scenario.pool, scenario.bbox)
        report = server.assign_single(scenario.single_task, scenario.budget)
        assert report.total_cost <= scenario.budget + 1e-9
        assert report.total_cost == pytest.approx(report.assignment.total_cost)


class TestMultiTaskServer:
    def test_sum_objective(self, multi_scenario_srv):
        scenario = multi_scenario_srv
        server = TCSCServer(scenario.pool, scenario.bbox)
        report = server.assign_multi(scenario.tasks, scenario.budget * 5, objective="sum")
        assert set(report.qualities) == {t.task_id for t in scenario.tasks}
        assert report.sum_quality > 0

    def test_min_objective(self, multi_scenario_srv):
        scenario = multi_scenario_srv
        server = TCSCServer(scenario.pool, scenario.bbox)
        report = server.assign_multi(scenario.tasks, scenario.budget * 5, objective="min")
        assert report.min_quality > 0

    def test_parallel_cores(self, multi_scenario_srv):
        scenario = multi_scenario_srv
        server = TCSCServer(scenario.pool, scenario.bbox)
        report = server.assign_multi(scenario.tasks, scenario.budget * 5, cores=4)
        assert report.sum_quality > 0

    def test_unknown_objective(self, multi_scenario_srv):
        scenario = multi_scenario_srv
        server = TCSCServer(scenario.pool, scenario.bbox)
        with pytest.raises(ConfigurationError):
            server.assign_multi(scenario.tasks, 1.0, objective="max")


class TestPhysicalQualityLink:
    """The entropy metric is a proxy for reconstruction fidelity: more
    budget -> higher entropy quality -> lower RMSE against the field."""

    def test_rmse_decreases_with_budget(self, scenario):
        field = SpatioTemporalField(scenario.bbox, seed=4)
        server = TCSCServer(scenario.pool, scenario.bbox, field_model=field)
        task = scenario.single_task
        rmses = []
        qualities = []
        for fraction in (0.05, 0.3, 0.9):
            report = server.assign_single(task, fraction * scenario.budget / 0.25)
            rmses.append(report.rmse[task.task_id])
            qualities.append(report.qualities[task.task_id])
        assert qualities == sorted(qualities)
        assert rmses[0] >= rmses[-1]

    def test_quality_correlates_with_rmse_vs_random(self, scenario):
        """At the same budget, Approx's entropy-optimal placement should
        reconstruct at least as well as a typical random placement."""
        field = SpatioTemporalField(scenario.bbox, seed=4)
        server = TCSCServer(scenario.pool, scenario.bbox, field_model=field)
        task = scenario.single_task
        approx = server.assign_single(task, scenario.budget)
        random_rmses = [
            server.assign_single(task, scenario.budget, policy="random", seed=s).rmse[task.task_id]
            for s in range(5)
        ]
        median_random = sorted(random_rmses)[len(random_rmses) // 2]
        assert approx.rmse[task.task_id] <= median_random * 1.5
