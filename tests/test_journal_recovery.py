"""Crash-consistent replay: recovery must be byte-identical.

The acceptance property of ``repro.journal``: killing a journaled run
at *every* event boundary and recovering (latest snapshot + log-suffix
replay) yields a run whose ``plan_signature()``, ``StreamMetrics``,
and ``OpCounters`` equal the uninterrupted run's exactly — for the
plain streaming server on both quality-kernel backends and for the
sharded deployment at shard counts 1/2/4.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalReplayError
from repro.journal.server import CrashBudget, InjectedCrash, JournaledStreamingServer
from repro.journal.sharded import JournaledShardedStreamingServer
from repro.journal.wal import Journal, WriteAheadLog, _frame
from repro.shard.streaming import ShardedStreamingServer
from repro.stream.online_server import StreamingTCSCServer
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events

SERVER_KWARGS = dict(
    k=2,
    epoch_length=3.0,
    budget_fraction=0.6,
    max_active_tasks=4,
    max_queue_depth=8,
    realization_seed=9,
)


@pytest.fixture(scope="module")
def trace():
    """A churn-heavy streaming trace shared by every recovery test."""
    scenario = build_stream_events(
        StreamScenarioConfig(
            horizon=16,
            task_rate=0.3,
            task_slots=8,
            initial_workers=14,
            worker_join_rate=0.8,
            mean_worker_lifetime=12.0,
            seed=9,
            budget_refresh_interval=6.0,
            budget_refresh_amount=4.0,
        )
    )
    return scenario


def _clean_run(trace, backend: str):
    server = StreamingTCSCServer(
        trace.bbox, backend=backend, pool_budget=40.0, **SERVER_KWARGS
    )
    metrics = server.run(list(trace.events))
    return metrics, server.assignment().plan_signature()


def _crash_at(trace, tmp_path, boundary, backend, *, phase="apply", snapshot_every=2):
    jdir = tmp_path / f"crash-{backend}-{phase}-{boundary}"
    server = JournaledStreamingServer(
        trace.bbox,
        journal=jdir,
        snapshot_every=snapshot_every,
        crash_after_events=boundary,
        crash_phase=phase,
        backend=backend,
        pool_budget=40.0,
        **SERVER_KWARGS,
    )
    with pytest.raises(InjectedCrash):
        server.run(list(trace.events))
    return jdir


class TestPlainRecovery:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_crash_recover_at_every_event_boundary(self, trace, tmp_path, backend):
        ref_metrics, ref_sig = _clean_run(trace, backend)
        assert len(ref_sig) > 5  # the trace must actually commit work
        for boundary in range(len(trace.events)):
            jdir = _crash_at(trace, tmp_path, boundary, backend)
            recovered = JournaledStreamingServer.recover(jdir)
            metrics = recovered.resume_with_trace(list(trace.events))
            assert metrics == ref_metrics, f"boundary {boundary} diverged"
            assert recovered.assignment().plan_signature() == ref_sig
            assert metrics.counters == ref_metrics.counters

    def test_append_phase_crash_recovers(self, trace, tmp_path):
        """A record journaled but never applied is redone on recovery."""
        ref_metrics, ref_sig = _clean_run(trace, "python")
        for boundary in (1, 7, len(trace.events) // 2):
            jdir = _crash_at(trace, tmp_path, boundary, "python", phase="append")
            recovered = JournaledStreamingServer.recover(jdir)
            metrics = recovered.resume_with_trace(list(trace.events))
            assert metrics == ref_metrics
            assert recovered.assignment().plan_signature() == ref_sig

    def test_journaling_adds_zero_op_count_overhead(self, trace, tmp_path):
        ref_metrics, ref_sig = _clean_run(trace, "python")
        server = JournaledStreamingServer(
            trace.bbox,
            journal=tmp_path / "uninterrupted",
            snapshot_every=2,
            backend="python",
            pool_budget=40.0,
            **SERVER_KWARGS,
        )
        metrics = server.run(list(trace.events))
        assert metrics == ref_metrics
        assert metrics.counters == ref_metrics.counters
        assert server.assignment().plan_signature() == ref_sig
        assert server.journal.wal.records_appended > len(trace.events)
        assert server.journal.snapshots_written > 0

    def test_snapshot_shortens_replay(self, trace, tmp_path):
        """A late crash recovers from a snapshot, replaying only the
        log suffix rather than the whole history."""
        boundary = len(trace.events) - 1
        jdir = _crash_at(trace, tmp_path, boundary, "python", snapshot_every=2)
        recovered = JournaledStreamingServer.recover(jdir)
        info = recovered.recovery
        assert info.snapshot_loaded
        assert info.events_restored + info.events_replayed == boundary
        assert info.events_replayed < boundary
        ref_metrics, _ = _clean_run(trace, "python")
        assert recovered.resume_with_trace(list(trace.events)) == ref_metrics

    def test_recovery_after_compaction(self, trace, tmp_path):
        """Compacting the log behind the newest snapshot preserves
        exact recovery (absolute sequence numbers survive)."""
        boundary = len(trace.events) - 1
        jdir = _crash_at(trace, tmp_path, boundary, "python", snapshot_every=2)
        journal = Journal(jdir)
        journal.open_for_resume()
        assert journal.compact() > 0
        recovered = JournaledStreamingServer.recover(jdir)
        ref_metrics, ref_sig = _clean_run(trace, "python")
        assert recovered.resume_with_trace(list(trace.events)) == ref_metrics
        assert recovered.assignment().plan_signature() == ref_sig

    def test_double_crash_after_compaction_with_empty_suffix(self, trace, tmp_path):
        """Regression: when compaction leaves an empty log suffix (the
        snapshot covers the whole log), the resumed run's appends must
        advance past the snapshot's wal_seq — otherwise a *second*
        recovery filters them out of its cursor and a valid journal
        becomes unrecoverable."""
        ref_metrics, ref_sig = _clean_run(trace, "python")
        # Find a boundary where the crash lands right on a snapshot
        # (empty log suffix once compacted) — the degenerate case.
        for boundary in range(1, len(trace.events)):
            jdir = _crash_at(trace, tmp_path, boundary, "python", snapshot_every=1)
            journal = Journal(jdir)
            journal.open_for_resume()
            journal.compact()
            recovered = JournaledStreamingServer.recover(jdir)
            if not recovered._replay:
                break
        else:
            pytest.fail("no snapshot-covered crash boundary in the trace")
        # Resume, but crash again shortly after recovery.
        recovered._crash = CrashBudget(recovered.replayed_event_count + 4)
        with pytest.raises(InjectedCrash):
            recovered.resume_with_trace(list(trace.events))
        # The second recovery must still be exact.
        recovered = JournaledStreamingServer.recover(jdir)
        assert recovered.resume_with_trace(list(trace.events)) == ref_metrics
        assert recovered.assignment().plan_signature() == ref_sig

    def test_completed_journal_resumes_idempotently(self, trace, tmp_path):
        ref_metrics, ref_sig = _clean_run(trace, "python")
        server = JournaledStreamingServer(
            trace.bbox,
            journal=tmp_path / "done",
            snapshot_every=2,
            backend="python",
            pool_budget=40.0,
            **SERVER_KWARGS,
        )
        server.run(list(trace.events))
        recovered = JournaledStreamingServer.recover(tmp_path / "done")
        assert recovered.recovery.events_replayed == 0
        assert recovered.resume_with_trace(list(trace.events)) == ref_metrics
        assert recovered.assignment().plan_signature() == ref_sig

    def test_resume_with_mismatched_trace_raises_typed(self, trace, tmp_path):
        """Resuming against a trace regenerated from different workload
        parameters must fail loudly, not splice two histories."""
        jdir = _crash_at(trace, tmp_path, len(trace.events) // 2, "python")
        other = build_stream_events(
            StreamScenarioConfig(
                horizon=16, task_rate=0.3, task_slots=8, initial_workers=14,
                worker_join_rate=0.8, mean_worker_lifetime=12.0,
                seed=10,  # != the journaled run's seed
                budget_refresh_interval=6.0, budget_refresh_amount=4.0,
            )
        )
        recovered = JournaledStreamingServer.recover(jdir)
        with pytest.raises(JournalReplayError):
            recovered.resume_with_trace(list(other.events))
        # A too-short trace is equally rejected.
        recovered = JournaledStreamingServer.recover(jdir)
        with pytest.raises(JournalReplayError):
            recovered.resume_with_trace(list(trace.events)[:3])

    def test_tampered_commit_record_raises_typed(self, trace, tmp_path):
        """Replay that regenerates a different record than the log
        holds must fail loudly, not fork history silently."""
        boundary = len(trace.events) - 1
        jdir = _crash_at(trace, tmp_path, boundary, "python", snapshot_every=0)
        wal_path = jdir / "wal.log"
        records, _, _ = WriteAheadLog.read(wal_path)
        commit_idx = next(
            i for i, r in enumerate(records) if r["type"] == "commit"
        )
        records[commit_idx]["worker_id"] += 1  # rewrite history
        with open(wal_path, "wb") as fh:
            for record in records:
                fh.write(_frame(record))
        recovered = JournaledStreamingServer.recover(jdir)
        with pytest.raises(JournalReplayError):
            recovered.resume_with_trace(list(trace.events))


class TestShardedRecovery:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_crash_recover_at_every_event_boundary(
        self, trace, tmp_path, num_shards
    ):
        reference = ShardedStreamingServer(
            trace.bbox, num_shards=num_shards, **SERVER_KWARGS
        )
        ref_metrics = reference.run(list(trace.events))
        ref_sig = reference.assignment().plan_signature()
        ref_counters = [s.counters for s in reference.servers]
        assert len(ref_sig) > 5

        boundary = 0
        while True:
            jdir = tmp_path / f"s{num_shards}-{boundary}"
            crashed = JournaledShardedStreamingServer(
                trace.bbox,
                journal_root=jdir,
                num_shards=num_shards,
                snapshot_every=2,
                crash_after_events=boundary,
                **SERVER_KWARGS,
            )
            try:
                crashed.run(list(trace.events))
                break  # budget outlived the run: every boundary swept
            except InjectedCrash:
                pass
            recovered = JournaledShardedStreamingServer.recover(jdir)
            metrics = recovered.resume(list(trace.events))
            assert metrics.per_shard == ref_metrics.per_shard, (
                f"shards={num_shards} boundary {boundary} diverged"
            )
            assert metrics.makespan == ref_metrics.makespan
            assert metrics.serial_cost == ref_metrics.serial_cost
            assert recovered.assignment().plan_signature() == ref_sig
            assert [s.counters for s in recovered.servers] == ref_counters
            boundary += 1
        # Halo fan-out means at least every trace event is a boundary.
        assert boundary >= len(trace.events)

    def test_one_shard_equals_plain_server(self, trace, tmp_path):
        plain = StreamingTCSCServer(trace.bbox, **SERVER_KWARGS)
        plain_metrics = plain.run(list(trace.events))
        sharded = JournaledShardedStreamingServer(
            trace.bbox,
            journal_root=tmp_path / "one",
            num_shards=1,
            snapshot_every=2,
            **SERVER_KWARGS,
        )
        metrics = sharded.run(list(trace.events))
        assert metrics.per_shard[0].promised_quality == plain_metrics.promised_quality
        assert sharded.assignment().plan_signature() == plain.assignment().plan_signature()

    def test_recovered_metadata_round_trip(self, trace, tmp_path):
        root = tmp_path / "meta"
        JournaledShardedStreamingServer(
            trace.bbox,
            journal_root=root,
            num_shards=2,
            snapshot_every=3,
            **SERVER_KWARGS,
        )
        meta = json.loads((root / "meta.json").read_text())
        assert meta["num_shards"] == 2
        assert meta["snapshot_every"] == 3
        recovered = JournaledShardedStreamingServer.recover(root)
        assert recovered.num_shards == 2
        assert recovered.halo_margin == meta["halo_margin"]
