"""Tests for the benchmark support package (reporter + baselines)."""

from __future__ import annotations

import pytest

from repro.bench.baselines import random_multi_assignment
from repro.bench.report import Reporter
from repro.core.quality import task_quality
from repro.workloads.scenario import ScenarioConfig, build_scenario


class TestReporter:
    def test_writes_file_and_prints(self, tmp_path, capsys):
        reporter = Reporter("figX", "Test figure", results_dir=tmp_path)
        reporter.note("a note")
        reporter.header("col1", "col2")
        reporter.row("a", 1.23456789)
        path = reporter.close()
        out = capsys.readouterr().out
        assert "figX: Test figure" in out
        assert path.exists()
        content = path.read_text()
        assert "note: a note" in content
        assert "col1 | col2" in content
        assert "a | 1.23457" in content  # 6 significant digits

    def test_integer_and_string_rows(self, tmp_path):
        reporter = Reporter("figY", "Ints", results_dir=tmp_path)
        reporter.row(42, "text", 0.5)
        content = reporter.close().read_text()
        assert "42 | text | 0.5" in content


class TestRandomMultiBaseline:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(
            ScenarioConfig(num_tasks=4, num_slots=15, num_workers=80, seed=3)
        )

    def test_budget_respected(self, scenario):
        budget = scenario.budget * 4
        qualities, assignment = random_multi_assignment(
            scenario.tasks, scenario.fresh_registry(), budget=budget, seed=1,
            return_assignment=True,
        )
        assert assignment.total_cost <= budget + 1e-9
        assert set(qualities) == {t.task_id for t in scenario.tasks}

    def test_qualities_match_assignment(self, scenario):
        budget = scenario.budget * 4
        qualities, assignment = random_multi_assignment(
            scenario.tasks, scenario.fresh_registry(), budget=budget, seed=2,
            return_assignment=True,
        )
        for task in scenario.tasks:
            slots = assignment.executed_slots(task.task_id)
            expected = task_quality(task.num_slots, 3, {s: 1.0 for s in slots})
            assert qualities[task.task_id] == pytest.approx(expected)

    def test_deterministic_per_seed(self, scenario):
        budget = scenario.budget * 4
        a = random_multi_assignment(
            scenario.tasks, scenario.fresh_registry(), budget=budget, seed=5
        )
        b = random_multi_assignment(
            scenario.tasks, scenario.fresh_registry(), budget=budget, seed=5
        )
        assert a == b

    def test_workers_not_double_booked(self, scenario):
        budget = scenario.budget * 4
        _, assignment = random_multi_assignment(
            scenario.tasks, scenario.fresh_registry(), budget=budget, seed=4,
            return_assignment=True,
        )
        tasks = {t.task_id: t for t in scenario.tasks}
        seen = set()
        for record in assignment:
            key = (record.worker_id, tasks[record.task_id].global_slot(record.slot))
            assert key not in seen
            seen.add(key)


class TestShardSuiteGates:
    """Gate logic of the shard suite (synthetic payloads, no solving)."""

    @staticmethod
    def _payload(**overrides):
        row = {
            "plan_identical": True,
            "conflicts": 0,
            "reconciled": 0,
            "serial_cost": 100.0,
        }
        row.update(overrides)
        return {
            "scenarios": [
                {
                    "name": "synthetic",
                    "reference": {"serial_cost": 100.0},
                    "shards": {"1": dict(row, conflicts=0, reconciled=0),
                               "2": row},
                }
            ]
        }

    def test_clean_payload_passes(self):
        from repro.bench.shardsuite import check_payload

        assert check_payload(self._payload()) == []

    def test_plan_divergence_fails(self):
        from repro.bench.shardsuite import check_payload

        failures = check_payload(self._payload(plan_identical=False))
        assert any("diverged" in f for f in failures)

    def test_serial_cost_drift_fails(self):
        from repro.bench.shardsuite import check_payload

        failures = check_payload(self._payload(serial_cost=150.0))
        assert any("serial cost" in f for f in failures)

    def test_single_shard_conflicts_fail(self):
        from repro.bench.shardsuite import check_payload

        payload = self._payload()
        payload["scenarios"][0]["shards"]["1"]["conflicts"] = 2
        failures = check_payload(payload)
        assert any("shards=1" in f for f in failures)

    def test_scenarios_match_perfsuite(self):
        from repro.bench.perfsuite import SCENARIOS as PERF
        from repro.bench.shardsuite import SCENARIOS, SHARD_COUNTS

        names = {s.name: s for s in SCENARIOS}
        for perf in PERF:
            scenario = names[perf.name]
            assert (scenario.tasks, scenario.m, scenario.workers, scenario.seed) == (
                1, perf.m, perf.workers, perf.seed
            )
        assert SHARD_COUNTS == (1, 2, 4, 8)
