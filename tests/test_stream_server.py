"""End-to-end tests for the streaming TCSC server."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.task import Task
from repro.model.worker import Worker
from repro.stream.events import TaskArrival, WorkerJoin, WorkerLeave
from repro.stream.online_server import BudgetPool, StreamingTCSCServer
from repro.stream.session import TaskSession, WindowedCosts
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events


def _scenario(**overrides):
    base = dict(
        horizon=50,
        task_rate=0.16,
        task_slots=14,
        initial_workers=25,
        worker_join_rate=0.8,
        mean_worker_lifetime=15.0,
        early_leave_prob=0.4,
        seed=5,
    )
    base.update(overrides)
    return build_stream_events(StreamScenarioConfig(**base))


class TestAcceptance:
    """The subsystem's core property: incremental == rebuild, cheaper."""

    @pytest.mark.parametrize("seed", [5, 19])
    def test_incremental_matches_rebuild_with_fewer_builds(self, seed):
        scenario = _scenario(seed=seed)
        outcomes = {}
        for mode in ("incremental", "rebuild"):
            server = StreamingTCSCServer(
                scenario.bbox, index_mode=mode, epoch_length=4.0
            )
            metrics = server.run(list(scenario.events))
            outcomes[mode] = (server.assignment(), metrics)
        inc_plan = outcomes["incremental"][0].plan_signature()
        reb_plan = outcomes["rebuild"][0].plan_signature()
        assert inc_plan == reb_plan, "index maintenance must not change the plan"
        assert len(inc_plan) > 0, "the trace must exercise real assignments"
        inc = outcomes["incremental"][1].counters
        reb = outcomes["rebuild"][1].counters
        assert inc.index_full_builds < reb.index_full_builds, (
            f"incremental built {inc.index_full_builds} indexes, "
            f"rebuild {reb.index_full_builds}"
        )
        assert inc.index_incremental_refreshes > 0
        assert reb.index_incremental_refreshes == 0
        assert inc.tree_node_updates < reb.tree_node_updates
        # Identical plans imply identical qualities.
        assert outcomes["incremental"][1].promised_quality == pytest.approx(
            outcomes["rebuild"][1].promised_quality
        )


class TestMetrics:
    def test_report_invariants(self):
        scenario = _scenario()
        server = StreamingTCSCServer(scenario.bbox)
        metrics = server.run(scenario.events)
        assert metrics.tasks_arrived == scenario.task_count
        assert (
            metrics.tasks_admitted + metrics.tasks_rejected == metrics.tasks_arrived
        )
        assert metrics.tasks_completed == metrics.tasks_admitted
        assert metrics.workers_joined == scenario.worker_count
        assert metrics.workers_left == metrics.workers_joined
        assert all(lat >= 0 for lat in metrics.assignment_latencies)
        assert metrics.p50_latency <= metrics.p99_latency
        assert metrics.epochs == len(metrics.queue_depth_samples)
        assert metrics.budget_spent == pytest.approx(
            server.assignment().total_cost
        )
        report = metrics.report()
        assert "latency" in report and "quality" in report

    def test_realized_quality_tracks_promises_with_reliable_workers(self):
        scenario = _scenario(seed=8)
        server = StreamingTCSCServer(scenario.bbox)
        metrics = server.run(scenario.events)
        # All reliabilities are 1.0, so realization is exact.
        for task_id, promised in metrics.promised_quality.items():
            assert metrics.realized_quality[task_id] == pytest.approx(promised)
        assert metrics.realization_ratio == pytest.approx(1.0)

    def test_unreliable_workers_realize_off_promise(self):
        """With lambda < 1 the sampled realization diverges from the
        plan (completed probes count at certainty, failures at zero),
        so promised and realized qualities no longer coincide."""
        scenario = _scenario(seed=8, reliability_range=(0.3, 0.7))
        server = StreamingTCSCServer(scenario.bbox)
        metrics = server.run(scenario.events)
        assert metrics.mean_promised_quality > 0
        deltas = [
            abs(metrics.realized_quality[task_id] - promised)
            for task_id, promised in metrics.promised_quality.items()
        ]
        assert max(deltas) > 1e-6

    def test_coverage_cells_recorded_per_completed_task(self):
        scenario = _scenario()
        server = StreamingTCSCServer(scenario.bbox)
        metrics = server.run(scenario.events)
        assert set(metrics.coverage_cells) == set(metrics.promised_quality)
        assert all(count >= 1 for count in metrics.coverage_cells.values())


class TestAdmissionControl:
    def test_queue_overflow_rejects(self):
        scenario = _scenario(task_rate=1.2, seed=13)
        server = StreamingTCSCServer(
            scenario.bbox, max_active_tasks=1, max_queue_depth=1, epoch_length=10.0
        )
        metrics = server.run(scenario.events)
        assert metrics.tasks_rejected > 0
        assert metrics.max_queue_depth <= 1
        assert metrics.tasks_admitted + metrics.tasks_rejected == metrics.tasks_arrived

    def test_determinism_same_trace_same_plan(self):
        scenario = _scenario(seed=23)
        plans = []
        for _ in range(2):
            server = StreamingTCSCServer(scenario.bbox)
            server.run(list(scenario.events))
            plans.append(server.assignment().plan_signature())
        assert plans[0] == plans[1]

    def test_numpy_backend_same_trace_same_plan(self):
        scenario = _scenario(seed=23)
        plans = {}
        for backend in ("python", "numpy"):
            server = StreamingTCSCServer(scenario.bbox, backend=backend)
            server.run(list(scenario.events))
            plans[backend] = server.assignment().plan_signature()
        assert plans["python"] == plans["numpy"]
        assert len(plans["python"]) > 0

    def test_run_is_one_shot(self):
        scenario = _scenario()
        server = StreamingTCSCServer(scenario.bbox)
        server.run(list(scenario.events))
        with pytest.raises(SchedulingError):
            server.run(list(scenario.events))

    def test_rejects_bad_configuration(self):
        bbox = BoundingBox.square(10.0)
        with pytest.raises(ConfigurationError):
            StreamingTCSCServer(bbox, index_mode="magic")
        with pytest.raises(ConfigurationError):
            StreamingTCSCServer(bbox, epoch_length=0.0)
        with pytest.raises(ConfigurationError):
            StreamingTCSCServer(bbox, max_active_tasks=0)
        with pytest.raises(ConfigurationError):
            StreamingTCSCServer(bbox, budget_fraction=0.0)


class TestBudgetPool:
    def test_pool_bounds_spending(self):
        scenario = _scenario(seed=5)
        unlimited = StreamingTCSCServer(scenario.bbox)
        unlimited_metrics = unlimited.run(list(scenario.events))
        capped = StreamingTCSCServer(
            scenario.bbox, pool_budget=unlimited_metrics.budget_spent / 4
        )
        capped_metrics = capped.run(list(scenario.events))
        assert capped_metrics.budget_spent <= unlimited_metrics.budget_spent / 4 + 1e-9
        assert capped_metrics.budget_spent < unlimited_metrics.budget_spent

    def test_refresh_events_top_up_the_pool(self):
        scenario = _scenario(
            seed=5, budget_refresh_interval=10.0, budget_refresh_amount=25.0
        )
        starved = StreamingTCSCServer(scenario.bbox, pool_budget=0.0)
        metrics = starved.run(scenario.events)
        # With a zero initial pool, everything spent came from refreshes.
        assert metrics.budget_spent > 0
        assert starved.pool.refreshed == pytest.approx(100.0)
        assert metrics.budget_spent <= starved.pool.refreshed + 1e-9

    def test_pool_api(self):
        pool = BudgetPool(5.0)
        pool.charge(3.0)
        assert pool.remaining == pytest.approx(2.0)
        pool.add(1.0)
        assert pool.remaining == pytest.approx(3.0)
        with pytest.raises(Exception):
            pool.charge(10.0)


class TestSlidingWindow:
    def test_windowed_costs_mask_past_slots(self):
        task = Task(task_id=0, loc=Point(5.0, 5.0), num_slots=6, start_slot=3)

        class Flat:
            def cost(self, slot):
                return 1.0

            def reliability(self, slot):
                return 0.9

            def offer(self, slot):
                return ("offer", slot)

        window = WindowedCosts(Flat(), task)
        assert window.cost(1) == 1.0
        # now=5: global slots 3 and 4 (locals 1, 2) have passed.
        fresh = window.advance(5.0)
        assert fresh == [1, 2]
        assert window.cost(1) is None and window.cost(2) is None
        assert window.cost(3) == 1.0
        assert window.offer(2) is None
        assert window.reliability(2) == 1.0
        # The mask never regresses and re-advancing is idempotent.
        assert window.advance(5.0) == []
        assert window.advance(100.0) == [3, 4, 5, 6]
        assert window.mask_hi == 6

    def test_late_admission_starves_gracefully(self):
        """A task whose window passed before capacity freed up completes
        with zero quality instead of wedging the loop."""
        bbox = BoundingBox.square(10.0)
        worker = Worker(0, {s: Point(5.0, 5.0) for s in range(1, 40)})
        blocker = Task(task_id=0, loc=Point(5.0, 5.0), num_slots=30, start_slot=1)
        late = Task(task_id=1, loc=Point(5.0, 5.0), num_slots=3, start_slot=2)
        events = [
            WorkerJoin(time=0.0, worker=worker),
            TaskArrival(time=0.0, task=blocker),
            TaskArrival(time=0.5, task=late),
            WorkerLeave(time=39.0, worker_id=0),
        ]
        server = StreamingTCSCServer(
            bbox, max_active_tasks=1, epoch_length=10.0
        )
        metrics = server.run(events)
        assert metrics.tasks_completed == 2
        assert metrics.tasks_starved >= 1
        assert metrics.promised_quality[1] == 0.0
