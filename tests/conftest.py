"""Shared fixtures: small, fast scenarios reused across the suite."""

from __future__ import annotations

import pytest

from repro.engine.costs import SingleTaskCostTable
from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="session")
def small_scenario():
    """One task, 40 slots, 200 workers — fast single-task instance."""
    return build_scenario(
        ScenarioConfig(num_tasks=1, num_slots=40, num_workers=200, seed=3)
    )


@pytest.fixture(scope="session")
def medium_scenario():
    """One task, 120 slots — large enough to exercise the index."""
    return build_scenario(
        ScenarioConfig(num_tasks=1, num_slots=120, num_workers=500, seed=11)
    )


@pytest.fixture(scope="session")
def multi_scenario():
    """Eight tasks sharing 250 workers — multi-task instance."""
    return build_scenario(
        ScenarioConfig(num_tasks=8, num_slots=40, num_workers=250, seed=7)
    )


@pytest.fixture()
def small_costs(small_scenario):
    """Fresh cost table for the small scenario's task."""
    return SingleTaskCostTable(small_scenario.single_task, small_scenario.fresh_registry())


@pytest.fixture()
def medium_costs(medium_scenario):
    """Fresh cost table for the medium scenario's task."""
    return SingleTaskCostTable(
        medium_scenario.single_task, medium_scenario.fresh_registry()
    )
