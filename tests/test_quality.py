"""Tests for the entropy quality metric (Section II, Eq. 1-5).

Includes the paper's worked example (Fig. 2 / Section II-B) and
hypothesis property tests for Lemmas 6-7 (submodularity and
non-decreasingness of the finishing probability) and Lemma 2
(monotone, bounded task quality).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.quality import (
    entropy_term,
    error_ratio,
    finishing_probability,
    interpolation_neighbors,
    max_quality,
    task_quality,
)
from repro.errors import ConfigurationError


class TestEntropyTerm:
    def test_zero(self):
        assert entropy_term(0.0) == 0.0

    def test_known_value(self):
        assert entropy_term(0.5) == pytest.approx(0.5)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            entropy_term(-0.1)
        with pytest.raises(ConfigurationError):
            entropy_term(1.1)

    def test_increasing_below_one_over_e(self):
        xs = [i / 1000 for i in range(1, int(1000 / math.e))]
        values = [entropy_term(x) for x in xs]
        assert values == sorted(values)


class TestErrorRatio:
    def test_paper_example(self):
        """Section II-B: m=100, k=2, tau(1) interpolated by {tau(2),
        tau(4)} at distances 1 and 3 -> rho = (1+3)/(2*100) = 0.02."""
        rho = error_ratio(100, 2, [(1, 1.0), (3, 1.0)])
        assert rho == pytest.approx(0.02)

    def test_no_neighbors_is_total_loss(self):
        assert error_ratio(50, 3, []) == pytest.approx(1.0)

    def test_footnote2_missing_neighbor(self):
        # One of two neighbours missing: it contributes distance m.
        rho = error_ratio(10, 2, [(1, 1.0)])
        assert rho == pytest.approx((1 + 10) / (2 * 10))

    def test_reliability_weighting(self):
        # Eq. 5: distances weighted by worker reliability.
        rho = error_ratio(10, 1, [(4, 0.5)])
        assert rho == pytest.approx(0.5 * 4 / 10)

    def test_too_many_neighbors_rejected(self):
        with pytest.raises(ConfigurationError):
            error_ratio(10, 1, [(1, 1.0), (2, 1.0)])

    def test_range(self):
        assert 0.0 <= error_ratio(20, 3, [(1, 1.0), (5, 1.0), (19, 1.0)]) <= 1.0


class TestFinishingProbability:
    def test_executed(self):
        assert finishing_probability(10, 3, None, executed_reliability=1.0) == pytest.approx(0.1)

    def test_executed_with_reliability(self):
        assert finishing_probability(10, 3, None, executed_reliability=0.6) == pytest.approx(0.06)

    def test_unexecuted_equals_one_minus_rho_over_m(self):
        m, k = 100, 2
        neighbors = [(1, 1.0), (3, 1.0)]
        p = finishing_probability(m, k, neighbors)
        rho = error_ratio(m, k, neighbors)
        assert p == pytest.approx((1 - rho) / m)

    def test_no_neighbors_zero(self):
        assert finishing_probability(10, 3, []) == 0.0

    def test_never_exceeds_one_over_m(self):
        p = finishing_probability(10, 1, [(1, 1.0)])
        assert p <= 1.0 / 10

    def test_rejects_contradictory_arguments(self):
        with pytest.raises(ConfigurationError):
            finishing_probability(10, 3, [(1, 1.0)], executed_reliability=1.0)
        with pytest.raises(ConfigurationError):
            finishing_probability(10, 3, None)

    def test_rejects_bad_distance(self):
        with pytest.raises(ConfigurationError):
            finishing_probability(10, 1, [(0, 1.0)])
        with pytest.raises(ConfigurationError):
            finishing_probability(10, 1, [(11, 1.0)])


class TestInterpolationNeighbors:
    def test_paper_example(self):
        # Fig. 2: tau(1)'s 2-NN among executed {2, 4} is {2, 4}.
        assert interpolation_neighbors(1, [2, 4], 2) == [2, 4]

    def test_excludes_self(self):
        assert interpolation_neighbors(3, [3, 5], 2) == [5]

    def test_tie_breaks_to_smaller(self):
        assert interpolation_neighbors(5, [3, 7], 1) == [3]


class TestTaskQuality:
    def test_empty_is_zero(self):
        assert task_quality(10, 3, {}) == 0.0

    def test_all_executed_is_log2_m(self):
        m = 16
        q = task_quality(m, 3, {j: 1.0 for j in range(1, m + 1)})
        assert q == pytest.approx(math.log2(m))
        assert max_quality(m) == pytest.approx(math.log2(m))

    def test_bounded(self):
        q = task_quality(20, 3, {1: 1.0, 10: 1.0})
        assert 0.0 < q < math.log2(20)

    def test_middle_slot_beats_corner(self):
        """A single executed slot in the middle interpolates better."""
        m = 21
        assert task_quality(m, 3, {11: 1.0}) > task_quality(m, 3, {1: 1.0})

    def test_rejects_out_of_range_slot(self):
        with pytest.raises(ConfigurationError):
            task_quality(10, 3, {11: 1.0})

    def test_rejects_tiny_m(self):
        with pytest.raises(ConfigurationError):
            task_quality(2, 3, {})


# ---------------------------------------------------------------------------
# Property tests for the paper's lemmas
# ---------------------------------------------------------------------------
_M = 30


def _p_of(slot: int, executed: set[int], k: int) -> float:
    """Reference finishing probability under unit reliability."""
    if slot in executed:
        return 1.0 / _M
    nn = interpolation_neighbors(slot, sorted(executed), k)
    return finishing_probability(_M, k, [(abs(e - slot), 1.0) for e in nn])


@given(
    executed=st.sets(st.integers(1, _M), max_size=10),
    extra=st.integers(1, _M),
    slot=st.integers(1, _M),
    k=st.integers(1, 4),
)
def test_lemma7_p_is_non_decreasing(executed, extra, slot, k):
    """Executing one more subtask never lowers any p(j) (Lemma 7)."""
    before = _p_of(slot, executed, k)
    after = _p_of(slot, executed | {extra}, k)
    assert after >= before - 1e-12


@given(
    executed=st.sets(st.integers(1, _M), max_size=10),
    extra=st.integers(1, _M),
    slot=st.integers(1, _M),
    k=st.integers(1, 4),
)
def test_lemma6_p_is_submodular(executed, extra, slot, k):
    """p(S ∩ {e}) + p(S ∪ {e}) <= p(S) + p({e}) (Lemma 6)."""
    s = executed
    e = {extra}
    lhs = _p_of(slot, s & e, k) + _p_of(slot, s | e, k)
    rhs = _p_of(slot, s, k) + _p_of(slot, e, k)
    assert lhs <= rhs + 1e-12


@given(
    executed=st.sets(st.integers(1, _M), max_size=10),
    extra=st.integers(1, _M),
    k=st.integers(1, 4),
)
def test_lemma2_quality_is_monotone(executed, extra, k):
    """q is non-decreasing in the executed set (Lemma 2)."""
    before = task_quality(_M, k, {j: 1.0 for j in executed})
    after = task_quality(_M, k, {j: 1.0 for j in executed | {extra}})
    assert after >= before - 1e-12


@given(executed=st.sets(st.integers(1, _M), max_size=12), k=st.integers(1, 4))
def test_quality_bounds(executed, k):
    """0 <= q <= log2 m always."""
    q = task_quality(_M, k, {j: 1.0 for j in executed})
    assert -1e-12 <= q <= math.log2(_M) + 1e-12
