"""Geometry substrate tests: points, boxes, distances, spatial indexes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.distance import euclidean, manhattan, squared_euclidean
from repro.geo.grid import GridIndex
from repro.geo.kdtree import KDTree
from repro.geo.point import Point


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == pytest.approx(25.0)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_ordering_lexicographic(self):
        assert Point(1, 9) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestDistances:
    def test_euclidean_symmetric(self):
        a, b = Point(1, 7), Point(-2, 3)
        assert euclidean(a, b) == pytest.approx(euclidean(b, a)) == pytest.approx(5.0)

    def test_squared_consistent(self):
        a, b = Point(0, 0), Point(2, 3)
        assert squared_euclidean(a, b) == pytest.approx(euclidean(a, b) ** 2)

    def test_manhattan(self):
        assert manhattan(Point(0, 0), Point(2, -3)) == pytest.approx(5.0)


class TestBoundingBox:
    def test_square(self):
        box = BoundingBox.square(10.0)
        assert box.width == box.height == 10.0
        assert box.center == Point(5.0, 5.0)
        assert box.diagonal == pytest.approx(math.sqrt(200))

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundingBox(1, 1, 0, 0)

    def test_contains_and_clamp(self):
        box = BoundingBox.square(10.0)
        assert box.contains(Point(5, 5))
        assert not box.contains(Point(11, 5))
        assert box.clamp(Point(11, -1)) == Point(10, 0)

    def test_zero_area_allowed(self):
        box = BoundingBox(2, 2, 2, 2)
        assert box.diagonal == 0.0
        assert box.contains(Point(2, 2))


def _points_strategy(n_max=40):
    coord = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
    return st.lists(st.tuples(coord, coord), min_size=1, max_size=n_max, unique=True)


class TestGridIndex:
    def _make(self, coords):
        bbox = BoundingBox.square(100.0)
        return GridIndex.from_items(
            bbox, [(i, Point(x, y)) for i, (x, y) in enumerate(coords)]
        )

    def test_nearest_simple(self):
        index = self._make([(10, 10), (50, 50), (90, 90)])
        key, dist = index.nearest(Point(12, 12))
        assert key == 0
        assert dist == pytest.approx(math.hypot(2, 2))

    def test_empty(self):
        index = GridIndex(BoundingBox.square(10.0))
        assert index.nearest(Point(5, 5)) is None
        assert index.k_nearest(Point(5, 5), 3) == []

    def test_remove(self):
        index = self._make([(10, 10), (20, 20)])
        index.remove(0)
        assert index.nearest(Point(10, 10))[0] == 1
        with pytest.raises(KeyError):
            index.remove(0)

    def test_add_moves_existing_key(self):
        index = self._make([(10, 10)])
        index.add(0, Point(90, 90))
        assert len(index) == 1
        assert index.location_of(0) == Point(90, 90)

    def test_k_larger_than_population(self):
        index = self._make([(10, 10), (20, 20)])
        assert len(index.k_nearest(Point(0, 0), 10)) == 2

    def test_within_radius(self):
        index = self._make([(10, 10), (11, 10), (50, 50)])
        hits = index.within(Point(10, 10), 2.0)
        assert [key for key, _ in hits] == [0, 1]

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ConfigurationError):
            GridIndex(BoundingBox.square(10.0), cell_size=0.0)

    @settings(deadline=None)
    @given(coords=_points_strategy(), qx=st.floats(0, 100), qy=st.floats(0, 100), k=st.integers(1, 5))
    def test_knn_matches_brute_force(self, coords, qx, qy, k):
        index = self._make(coords)
        query = Point(qx, qy)
        got = index.k_nearest(query, k)
        expected = sorted(
            ((query.distance_to(Point(x, y)), i) for i, (x, y) in enumerate(coords))
        )[:k]
        assert [d for _, d in got] == pytest.approx([d for d, _ in expected])


class TestKDTree:
    def test_nearest(self):
        tree = KDTree([(i, Point(x, x)) for i, x in enumerate([1, 5, 9])])
        assert tree.nearest(Point(4.6, 4.6))[0] == 1

    def test_remove_tombstones(self):
        tree = KDTree([(0, Point(1, 1)), (1, Point(2, 2))])
        tree.remove(0)
        assert 0 not in tree
        assert len(tree) == 1
        assert tree.nearest(Point(1, 1))[0] == 1
        with pytest.raises(KeyError):
            tree.remove(0)

    def test_add(self):
        tree = KDTree()
        tree.add(7, Point(3, 3))
        assert tree.nearest(Point(0, 0))[0] == 7

    def test_exclude(self):
        tree = KDTree([(0, Point(1, 1)), (1, Point(2, 2))])
        assert tree.nearest(Point(1, 1), exclude={0})[0] == 1

    @settings(deadline=None)
    @given(coords=_points_strategy(25), qx=st.floats(0, 100), qy=st.floats(0, 100), k=st.integers(1, 4))
    def test_matches_grid_index(self, coords, qx, qy, k):
        """The two spatial indexes agree (they share the tie-break)."""
        bbox = BoundingBox.square(100.0)
        items = [(i, Point(x, y)) for i, (x, y) in enumerate(coords)]
        grid = GridIndex.from_items(bbox, items)
        tree = KDTree(items)
        query = Point(qx, qy)
        grid_d = [d for _, d in grid.k_nearest(query, k)]
        tree_d = [d for _, d in tree.k_nearest(query, k)]
        assert grid_d == pytest.approx(tree_d)
