"""Tests for the sharded streaming mode (event routing + pinning)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.task import Task
from repro.model.worker import Worker
from repro.shard.streaming import ShardedStreamingServer
from repro.stream.events import BudgetRefresh, TaskArrival, WorkerJoin, WorkerLeave
from repro.stream.online_server import StreamingTCSCServer
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events

_CFG = StreamScenarioConfig(
    horizon=40,
    task_rate=0.2,
    task_slots=10,
    initial_workers=20,
    worker_join_rate=0.5,
    seed=7,
)


def _trace():
    return build_stream_events(_CFG)


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedStreamingServer(BoundingBox.square(10), num_shards=0)

    def test_rejects_bad_halo_margin(self):
        with pytest.raises(ConfigurationError):
            ShardedStreamingServer(
                BoundingBox.square(10), num_shards=2, halo_margin="magic"
            )
        with pytest.raises(ConfigurationError):
            ShardedStreamingServer(
                BoundingBox.square(10), num_shards=2, halo_margin=-1.0
            )

    def test_run_is_one_shot(self):
        scenario = _trace()
        server = ShardedStreamingServer(scenario.bbox, num_shards=2)
        server.run(scenario.events)
        with pytest.raises(SchedulingError):
            server.run([])


class TestSingleShardEquivalence:
    def test_one_shard_matches_plain_server(self):
        scenario = _trace()
        plain = StreamingTCSCServer(scenario.bbox, realization_seed=7)
        plain_metrics = plain.run(scenario.events)

        scenario2 = _trace()
        sharded = ShardedStreamingServer(
            scenario2.bbox, num_shards=1, realization_seed=7
        )
        merged = sharded.run(scenario2.events)
        assert (
            sharded.assignment().plan_signature()
            == plain.assignment().plan_signature()
        )
        assert merged.tasks_arrived == plain_metrics.tasks_arrived
        assert merged.tasks_completed == plain_metrics.tasks_completed
        assert merged.promised_quality == plain_metrics.promised_quality


class TestRouting:
    def test_sessions_pinned_to_one_shard(self):
        scenario = _trace()
        server = ShardedStreamingServer(scenario.bbox, num_shards=4)
        server.run(scenario.events)
        seen: dict[int, int] = {}
        for shard, shard_server in enumerate(server.servers):
            for session in shard_server._finished:
                task_id = session.task.task_id
                assert task_id not in seen, "task session split across shards"
                seen[task_id] = shard
        assert len(seen) > 0

    def test_no_tasks_lost(self):
        scenario = _trace()
        server = ShardedStreamingServer(scenario.bbox, num_shards=4)
        metrics = server.run(scenario.events)
        assert metrics.tasks_arrived == scenario.task_count
        assert metrics.dropped_events == 0
        assert sum(metrics.tasks_routed) == scenario.task_count

    def test_worker_churn_updates_only_owning_shards(self):
        bbox = BoundingBox.square(100)
        # A worker in the far corner of shard 0's region, with a tiny
        # margin: shards that own distant cells must never see it.
        worker = Worker(worker_id=1, availability={1: Point(1.0, 1.0)})
        server = ShardedStreamingServer(
            bbox, num_shards=4, cells_per_side=4, halo_margin=1.0
        )
        traces, metrics = server.route(
            [WorkerJoin(0.0, worker), WorkerLeave(5.0, 1)]
        )
        routed = metrics.worker_routes[1]
        assert len(routed) < 4
        for shard, trace in enumerate(traces):
            kinds = [type(e).__name__ for e in trace]
            if shard in routed:
                assert kinds == ["WorkerJoin", "WorkerLeave"]
            else:
                assert kinds == []

    def test_boundary_worker_replicated(self):
        bbox = BoundingBox.square(100)
        server = ShardedStreamingServer(
            bbox, num_shards=4, cells_per_side=4, halo_margin=30.0
        )
        worker = Worker(worker_id=1, availability={1: Point(50.0, 50.0)})
        _, metrics = server.route([WorkerJoin(0.0, worker)])
        assert len(metrics.worker_routes[1]) >= 2
        assert metrics.replicated_workers == 1

    def test_leave_without_join_is_dropped(self):
        server = ShardedStreamingServer(BoundingBox.square(10), num_shards=2)
        traces, metrics = server.route([WorkerLeave(1.0, 99)])
        assert metrics.dropped_events == 1
        assert all(not trace for trace in traces)

    def test_budget_refresh_split_evenly(self):
        server = ShardedStreamingServer(BoundingBox.square(10), num_shards=4)
        traces, _ = server.route([BudgetRefresh(1.0, 8.0)])
        for trace in traces:
            assert len(trace) == 1
            assert isinstance(trace[0], BudgetRefresh)
            assert trace[0].amount == pytest.approx(2.0)

    def test_task_routed_by_location(self):
        bbox = BoundingBox.square(100)
        server = ShardedStreamingServer(bbox, num_shards=4, cells_per_side=4)
        task = Task(task_id=1, loc=Point(10.0, 10.0), num_slots=4)
        traces, _ = server.route([TaskArrival(0.0, task)])
        expected = server.partitioner.shard_of_location(task.loc)
        for shard, trace in enumerate(traces):
            assert bool(trace) == (shard == expected)


class TestScaling:
    def test_makespan_accounting(self):
        scenario = _trace()
        server = ShardedStreamingServer(scenario.bbox, num_shards=4)
        metrics = server.run(scenario.events)
        assert metrics.serial_cost > 0
        assert 0 < metrics.makespan <= metrics.serial_cost + 1e-9
        assert metrics.speedup >= 1.0

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            scenario = _trace()
            server = ShardedStreamingServer(
                scenario.bbox, num_shards=4, realization_seed=7
            )
            metrics = server.run(scenario.events)
            results.append(
                (
                    server.assignment().plan_signature(),
                    metrics.makespan,
                    metrics.tasks_routed,
                    metrics.promised_quality,
                )
            )
        assert results[0] == results[1]

    def test_report_renders(self):
        scenario = _trace()
        server = ShardedStreamingServer(scenario.bbox, num_shards=2)
        metrics = server.run(scenario.events)
        text = metrics.report()
        assert "sharded streaming report" in text
        assert "makespan" in text
