"""Tests for the sharded serving coordinator.

The subsystem's contract is *plan identity*: whatever the shard
count, partition method, solver engine, or kernel backend, the merged
plan must be byte-identical to the unsharded sequential solve.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.shard.server import (
    SequentialServingSolver,
    ShardedTCSCServer,
    compute_budgets,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def serving_scenario():
    """16 tasks over 300 workers — dense enough for real conflicts."""
    return build_scenario(
        ScenarioConfig(num_tasks=16, num_slots=24, num_workers=300, seed=13)
    )


@pytest.fixture(scope="module")
def serving_reference(serving_scenario):
    return SequentialServingSolver(
        serving_scenario.pool, serving_scenario.bbox
    ).assign(serving_scenario.tasks)


class TestSequentialReference:
    def test_serves_every_task(self, serving_scenario, serving_reference):
        assert set(serving_reference.qualities) == {
            t.task_id for t in serving_scenario.tasks
        }
        assert len(serving_reference.assignment) > 0
        assert serving_reference.serial_cost > 0

    def test_no_worker_double_booking(self, serving_scenario, serving_reference):
        by_id = {t.task_id: t for t in serving_scenario.tasks}
        seen = set()
        for record in serving_reference.assignment:
            key = (record.worker_id, by_id[record.task_id].global_slot(record.slot))
            assert key not in seen
            seen.add(key)

    def test_budgets_respected(self, serving_scenario, serving_reference):
        for task in serving_scenario.tasks:
            spent = sum(
                r.cost
                for r in serving_reference.assignment.records_for(task.task_id)
            )
            assert spent <= serving_reference.budgets[task.task_id] + 1e-9

    def test_rejects_unknown_engine(self, serving_scenario):
        with pytest.raises(ConfigurationError):
            SequentialServingSolver(
                serving_scenario.pool, serving_scenario.bbox, engine="magic"
            )

    def test_rejects_partial_budgets(self, serving_scenario):
        solver = SequentialServingSolver(
            serving_scenario.pool, serving_scenario.bbox
        )
        with pytest.raises(ConfigurationError):
            solver.assign(serving_scenario.tasks, budgets={0: 1.0})


class TestPlanIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_identical_to_reference(
        self, serving_scenario, serving_reference, num_shards
    ):
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=num_shards
        ).assign(serving_scenario.tasks)
        assert report.plan_signature() == serving_reference.plan_signature()
        assert report.qualities == serving_reference.qualities
        assert report.total_cost == pytest.approx(serving_reference.total_cost)

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_single_task_identity(self, small_scenario, num_shards):
        reference = SequentialServingSolver(
            small_scenario.pool, small_scenario.bbox
        ).assign(small_scenario.tasks)
        report = ShardedTCSCServer(
            small_scenario.pool, small_scenario.bbox, num_shards=num_shards
        ).assign(small_scenario.tasks)
        assert report.plan_signature() == reference.plan_signature()
        assert report.conflicts == 0
        assert report.reconciled_task_ids == ()

    @pytest.mark.parametrize("method", ["grid", "kd"])
    @pytest.mark.parametrize(
        "engine,search,backend",
        [
            ("greedy", "enumerate", "python"),
            ("greedy", "lazy", "numpy"),
            ("indexed", "lazy", "python"),
        ],
    )
    def test_identity_across_variants(
        self, serving_scenario, method, engine, search, backend
    ):
        reference = SequentialServingSolver(
            serving_scenario.pool, serving_scenario.bbox,
            engine=engine, search=search, backend=backend,
        ).assign(serving_scenario.tasks)
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4,
            method=method, engine=engine, search=search, backend=backend,
        ).assign(serving_scenario.tasks)
        assert report.plan_signature() == reference.plan_signature()

    def test_identity_with_heterogeneous_reliability(self):
        scenario = build_scenario(
            ScenarioConfig(
                num_tasks=8, num_slots=20, num_workers=200, seed=9,
                reliability_range=(0.6, 1.0),
            )
        )
        reference = SequentialServingSolver(scenario.pool, scenario.bbox).assign(
            scenario.tasks
        )
        for num_shards in (2, 4):
            report = ShardedTCSCServer(
                scenario.pool, scenario.bbox, num_shards=num_shards
            ).assign(scenario.tasks)
            assert report.plan_signature() == reference.plan_signature()

    def test_identity_with_explicit_budgets(self, serving_scenario):
        budgets = compute_budgets(
            serving_scenario.tasks, serving_scenario.pool, serving_scenario.bbox,
            budget_fraction=0.4,
        )
        reference = SequentialServingSolver(
            serving_scenario.pool, serving_scenario.bbox
        ).assign(serving_scenario.tasks, budgets=budgets)
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4
        ).assign(serving_scenario.tasks, budgets=budgets)
        assert report.plan_signature() == reference.plan_signature()


class TestReconciliation:
    def test_conflicts_detected_and_resolved(self, serving_scenario):
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4
        ).assign(serving_scenario.tasks)
        # Seed 13 packs tasks densely enough that halo-replicated
        # workers are contested across shards (regression anchor: the
        # reconciliation path must actually run in this suite).
        assert report.conflicts >= 1
        assert len(report.reconciled_task_ids) >= 1
        for entry in report.conflict_table.entries:
            assert len(entry.task_ids) >= 2
            owners = {
                report.shard_map.shard_of_task[tid] for tid in entry.task_ids
            }
            assert len(owners) >= 2, "conflicts are cross-shard by construction"

    def test_contested_workers_granted_once(self, serving_scenario):
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4
        ).assign(serving_scenario.tasks)
        by_id = {t.task_id: t for t in serving_scenario.tasks}
        committed: dict[tuple[int, int], list[int]] = {}
        for record in report.assignment:
            key = (record.worker_id, by_id[record.task_id].global_slot(record.slot))
            committed.setdefault(key, []).append(record.task_id)
        # No double-booking anywhere in the merged plan, and each
        # contested pair went to at most one of its claimants.
        assert all(len(owners) == 1 for owners in committed.values())
        for entry in report.conflict_table.entries:
            owners = committed.get((entry.worker_id, entry.global_slot), [])
            assert len(owners) <= 1

    def test_single_shard_is_degenerate(self, serving_scenario, serving_reference):
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=1
        ).assign(serving_scenario.tasks)
        assert report.conflicts == 0
        assert report.reconciled_task_ids == ()
        assert report.revalidated_task_ids == ()
        assert report.makespan == pytest.approx(serving_reference.serial_cost)


class TestAccounting:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_serial_cost_is_shard_invariant(
        self, serving_scenario, serving_reference, num_shards
    ):
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=num_shards
        ).assign(serving_scenario.tasks)
        assert report.serial_cost == pytest.approx(
            serving_reference.serial_cost, abs=1e-6
        )
        assert report.per_task_cost == pytest.approx(
            serving_reference.per_task_cost
        )

    def test_makespan_and_messages(self, serving_scenario):
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4
        ).assign(serving_scenario.tasks)
        assert report.makespan > 0
        assert report.speedup > 0
        assert 0.0 < report.utilization <= 1.0
        assert report.messages == report.conflicts + len(report.reconciled_task_ids)

    def test_sharding_reduces_makespan(self):
        scenario = build_scenario(
            ScenarioConfig(num_tasks=32, num_slots=24, num_workers=600, seed=5)
        )
        single = ShardedTCSCServer(
            scenario.pool, scenario.bbox, num_shards=1
        ).assign(scenario.tasks)
        eight = ShardedTCSCServer(
            scenario.pool, scenario.bbox, num_shards=8
        ).assign(scenario.tasks)
        assert eight.plan_signature() == single.plan_signature()
        assert eight.makespan < single.makespan
        assert eight.speedup > 1.5

    def test_shard_stats_cover_all_work(self, serving_scenario):
        report = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4
        ).assign(serving_scenario.tasks)
        assert len(report.shard_stats) == 4
        stat_tasks = [tid for stat in report.shard_stats for tid in stat.task_ids]
        assert sorted(stat_tasks) == sorted(
            t.task_id for t in serving_scenario.tasks
        )
        assert sum(stat.virtual_cost for stat in report.shard_stats) > 0


class TestDeterminism:
    def test_repeat_runs_identical(self, serving_scenario):
        first = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4
        ).assign(serving_scenario.tasks)
        second = ShardedTCSCServer(
            serving_scenario.pool, serving_scenario.bbox, num_shards=4
        ).assign(serving_scenario.tasks)
        assert first.plan_signature() == second.plan_signature()
        assert first.makespan == second.makespan
        assert first.reconciled_task_ids == second.reconciled_task_ids
        assert first.revalidated_task_ids == second.revalidated_task_ids
        assert len(first.conflict_table) == len(second.conflict_table)
