"""Tests for the streaming event queue and virtual clock."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geo.point import Point
from repro.model.task import Task
from repro.model.worker import Worker
from repro.stream.clock import VirtualClock
from repro.stream.events import (
    BudgetRefresh,
    EventQueue,
    TaskArrival,
    WorkerJoin,
    WorkerLeave,
)


def _worker(worker_id=0):
    return Worker(worker_id, {1: Point(0.0, 0.0)})


def _task(task_id=0, start=1):
    return Task(task_id=task_id, loc=Point(1.0, 1.0), num_slots=5, start_slot=start)


class TestEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerLeave(time=-1.0, worker_id=0)

    def test_negative_refresh_amount_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetRefresh(time=0.0, amount=-5.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(WorkerLeave(time=3.0, worker_id=1))
        queue.push(WorkerJoin(time=1.0, worker=_worker()))
        queue.push(TaskArrival(time=2.0, task=_task()))
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_same_instant_kind_priority(self):
        """joins < refreshes < arrivals < leaves at the same timestamp."""
        queue = EventQueue()
        queue.push(WorkerLeave(time=5.0, worker_id=9))
        queue.push(TaskArrival(time=5.0, task=_task()))
        queue.push(BudgetRefresh(time=5.0, amount=1.0))
        queue.push(WorkerJoin(time=5.0, worker=_worker()))
        kinds = [type(queue.pop()).__name__ for _ in range(4)]
        assert kinds == ["WorkerJoin", "BudgetRefresh", "TaskArrival", "WorkerLeave"]

    def test_fifo_within_same_kind_and_instant(self):
        queue = EventQueue()
        first = TaskArrival(time=1.0, task=_task(0))
        second = TaskArrival(time=1.0, task=_task(1))
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_until_is_strict(self):
        queue = EventQueue(
            [
                TaskArrival(time=1.0, task=_task(0)),
                TaskArrival(time=2.0, task=_task(1)),
                TaskArrival(time=3.0, task=_task(2)),
            ]
        )
        ready = queue.pop_until(2.0)
        assert [e.time for e in ready] == [1.0]
        assert len(queue) == 2

    def test_empty_pop_returns_none(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue


class TestVirtualClock:
    def test_monotonic(self):
        clock = VirtualClock()
        clock.advance_to(4.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(3.0)
        assert clock.now == 4.0

    def test_epoch_index(self):
        clock = VirtualClock()
        clock.advance_to(11.0)
        assert clock.epoch_index(5.0) == 2
        with pytest.raises(ConfigurationError):
            clock.epoch_index(0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(start=-1.0)
