"""Tests for the task-level parallel framework and the master's tables."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.multi.msqm import SumQualityGreedy
from repro.multi.scheduler import TaskLevelParallelSolver, ThreadedTaskLevelSolver
from repro.multi.tables import ConflictingTable, HeartbeatTable, LoggingTable
from repro.workloads.scenario import ScenarioConfig, build_scenario


def shared_budget(scenario):
    return scenario.budget * len(scenario.tasks)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig(num_tasks=6, num_slots=30, num_workers=150, seed=9))


@pytest.fixture(scope="module")
def serial_plan(scenario):
    return SumQualityGreedy(
        scenario.tasks, scenario.fresh_registry(), budget=shared_budget(scenario)
    ).solve()


class TestSerialEquivalentMode:
    @pytest.mark.parametrize("cores", [1, 3, 8])
    def test_plan_equals_serial(self, scenario, serial_plan, cores):
        result = TaskLevelParallelSolver(
            scenario.tasks,
            scenario.fresh_registry(),
            budget=shared_budget(scenario),
            cores=cores,
            grant_mode="serial-equivalent",
        ).solve()
        assert result.plan_signature() == serial_plan.plan_signature()
        assert result.sum_quality == pytest.approx(serial_plan.sum_quality)

    def test_priority_not_slower_than_default(self, scenario):
        budget = shared_budget(scenario)
        pri = TaskLevelParallelSolver(
            scenario.tasks, scenario.fresh_registry(), budget=budget,
            cores=2, grant_mode="serial-equivalent", priority=True,
        ).solve()
        fifo = TaskLevelParallelSolver(
            scenario.tasks, scenario.fresh_registry(), budget=budget,
            cores=2, grant_mode="serial-equivalent", priority=False,
        ).solve()
        assert pri.virtual_time <= fifo.virtual_time
        # Both modes still produce the serial plan.
        assert pri.plan_signature() == fifo.plan_signature()


class TestPipelinedMode:
    def test_deterministic(self, scenario):
        budget = shared_budget(scenario)
        a = TaskLevelParallelSolver(
            scenario.tasks, scenario.fresh_registry(), budget=budget, cores=4
        ).solve()
        b = TaskLevelParallelSolver(
            scenario.tasks, scenario.fresh_registry(), budget=budget, cores=4
        ).solve()
        assert a.plan_signature() == b.plan_signature()

    def test_quality_close_to_serial(self, scenario, serial_plan):
        result = TaskLevelParallelSolver(
            scenario.tasks,
            scenario.fresh_registry(),
            budget=shared_budget(scenario),
            cores=8,
        ).solve()
        assert result.sum_quality >= 0.9 * serial_plan.sum_quality

    def test_budget_respected(self, scenario):
        budget = shared_budget(scenario)
        result = TaskLevelParallelSolver(
            scenario.tasks, scenario.fresh_registry(), budget=budget, cores=4
        ).solve()
        assert result.spent <= budget + 1e-9

    def test_speedup_with_cores(self, scenario):
        budget = shared_budget(scenario)
        times = {}
        for cores in (1, 4, 12):
            times[cores] = TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=budget, cores=cores
            ).solve().virtual_time
        assert times[4] < times[1]
        assert times[12] < times[4]
        # Not super-linear beyond the core count.
        assert times[1] / times[12] <= 14.0

    def test_rejects_bad_configuration(self, scenario):
        with pytest.raises(SchedulingError):
            TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=1.0, cores=0
            )
        with pytest.raises(SchedulingError):
            TaskLevelParallelSolver(
                scenario.tasks, scenario.fresh_registry(), budget=1.0, grant_mode="warp"
            )

    def test_tables_populated(self, scenario):
        solver = TaskLevelParallelSolver(
            scenario.tasks,
            scenario.fresh_registry(),
            budget=shared_budget(scenario),
            cores=4,
        )
        solver.solve()
        assert len(solver.log) > 0
        # Heartbeats are removed as threads finish.
        assert len(solver.heartbeats) == 0


class TestThreadedSolver:
    def test_plan_equals_serial(self, scenario, serial_plan):
        result = ThreadedTaskLevelSolver(
            scenario.tasks,
            scenario.fresh_registry(),
            budget=shared_budget(scenario),
            threads=4,
        ).solve()
        assert result.plan_signature() == serial_plan.plan_signature()

    def test_single_thread_also_matches(self, scenario, serial_plan):
        result = ThreadedTaskLevelSolver(
            scenario.tasks,
            scenario.fresh_registry(),
            budget=shared_budget(scenario),
            threads=1,
        ).solve()
        assert result.plan_signature() == serial_plan.plan_signature()


class TestTables:
    def test_heartbeat_table(self):
        table = HeartbeatTable()
        table.report(1, 5.0, 0.0)
        table.report(2, 9.0, 1.0)
        assert table.value(1) == 5.0
        assert table.value(3) is None
        assert table.descending() == [(2, 9.0), (1, 5.0)]
        table.remove(1)
        assert len(table) == 1

    def test_heartbeat_tie_breaks_by_task_id(self):
        table = HeartbeatTable()
        table.report(2, 5.0, 0.0)
        table.report(1, 5.0, 0.0)
        assert table.descending() == [(1, 5.0), (2, 5.0)]

    def test_logging_table(self):
        log = LoggingTable()
        log.log(0.0, 1, 5.0)
        log.log(1.0, 1, 4.0)
        log.log(0.5, 2, 3.0)
        assert log.for_task(1) == [(0.0, 5.0), (1.0, 4.0)]
        assert len(log) == 3

    def test_conflicting_table(self):
        table = ConflictingTable()
        table.record((1, 2), 7, 99, 1, 0.0)
        assert len(table) == 1
        assert table.bump_rank(7) == 2
        assert table.bump_rank(8) == 1
