"""The composable runtime: factory composition vs the legacy lattice.

Two contracts under test.  First, the layer seam itself: layers
observe every hook in order and never perturb a run (byte-identical
plan, metrics, and counters with or without a no-op layer).  Second,
the deprecation shims: the legacy class spellings must keep producing
exactly what the factory-built composition produces on a seeded
scenario — plan signature and ``OpCounters`` included — while warning
exactly once.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import SpecError
from repro.journal.layer import journal_layer
from repro.journal.sharded import JournaledShardedStreamingServer
from repro.journal.server import JournaledStreamingServer
from repro.runtime import (
    RunSpec,
    ServingLayer,
    StreamRuntime,
    WorkloadSpec,
    build_runtime,
    recover_runtime,
    reset_deprecation_warnings,
)
from repro.stream.online_server import StreamingTCSCServer

STREAM_WORKLOAD = WorkloadSpec(
    horizon=16, task_rate=0.3, task_slots=8, initial_workers=14,
    join_rate=0.8, mean_lifetime=12.0, seed=9,
)

STREAM_SPEC = RunSpec(
    mode="stream", workload=STREAM_WORKLOAD, k=2,
    epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8, snapshot_every=2,
)


def _legacy_kwargs(spec: RunSpec) -> dict:
    return dict(
        k=spec.k, epoch_length=spec.epoch_length,
        budget_fraction=spec.budget_fraction,
        max_active_tasks=spec.max_active_tasks,
        max_queue_depth=spec.max_queue_depth,
        realization_seed=spec.workload.seed, backend=spec.backend,
    )


class RecordingLayer(ServingLayer):
    """A no-op layer that logs which hooks fired, in order."""

    def __init__(self):
        self.calls: list[str] = []
        self.server = None

    def bind(self, server):
        self.server = server
        self.calls.append("bind")

    def before_event(self, event, metrics):
        self.calls.append("before_event")

    def after_event(self, event, metrics):
        self.calls.append("after_event")

    def before_commit(self, session, worker_id, gslot, slot, cost):
        self.calls.append("before_commit")

    def before_finalize(self, session, metrics):
        self.calls.append("before_finalize")

    def on_epoch_end(self, metrics, now):
        self.calls.append("on_epoch_end")

    def on_run_complete(self, metrics):
        self.calls.append("on_run_complete")


class TestLayerSeam:
    def test_noop_layer_observes_without_perturbing(self):
        scenario = build_runtime(STREAM_SPEC).scenario()
        bare = StreamingTCSCServer(scenario.bbox, **_legacy_kwargs(STREAM_SPEC))
        bare_metrics = bare.run(list(scenario.events))

        probe = RecordingLayer()
        layered = StreamingTCSCServer(
            scenario.bbox, layers=(probe,), **_legacy_kwargs(STREAM_SPEC)
        )
        layered_metrics = layered.run(list(scenario.events))

        # Observation is complete...
        assert probe.server is layered
        assert probe.calls[0] == "bind"
        assert probe.calls[-1] == "on_run_complete"
        assert probe.calls.count("before_event") == len(scenario.events)
        assert probe.calls.count("after_event") == len(scenario.events)
        assert probe.calls.count("on_epoch_end") == layered_metrics.epochs
        assert probe.calls.count("before_commit") == len(layered.assignment())
        assert probe.calls.count("before_finalize") > 0
        # ...and free: byte-identical run.
        assert layered_metrics == bare_metrics
        assert layered.assignment().plan_signature() == bare.assignment().plan_signature()
        assert layered_metrics.counters == bare_metrics.counters

    def test_before_event_precedes_application(self):
        """The seam's log-before-apply ordering: before_event for event
        N fires before after_event for event N, pairwise."""
        probe = RecordingLayer()
        scenario = build_runtime(STREAM_SPEC).scenario()
        server = StreamingTCSCServer(
            scenario.bbox, layers=(probe,), **_legacy_kwargs(STREAM_SPEC)
        )
        server.run(list(scenario.events))
        events_only = [c for c in probe.calls if c.endswith("_event")]
        assert events_only == ["before_event", "after_event"] * len(scenario.events)


class TestFactoryModes:
    def test_plain_shards_are_plan_identical(self):
        base = RunSpec(
            mode="plain",
            workload=WorkloadSpec(tasks=6, slots=12, workers=150, seed=13),
        )
        reference = build_runtime(base).run()
        assert len(reference.plan_signature) > 0
        for shards in (2, 4):
            outcome = build_runtime(base.replace(shards=shards)).run()
            assert outcome.plan_signature == reference.plan_signature
            assert outcome.qualities == reference.qualities

    def test_batch_mode_rounds_partition_the_taskset(self):
        base = RunSpec(
            mode="batch",
            workload=WorkloadSpec(tasks=6, slots=12, workers=150, seed=13,
                                  rounds=3),
        )
        outcome = build_runtime(base).run()
        assert outcome.server.rounds == 3
        assert len(outcome.plan_signature) > 0
        assert len(outcome.qualities) == 6  # every task served exactly once

    def test_stream_shards_one_matches_plain_streaming(self):
        plain = build_runtime(STREAM_SPEC).run()
        forced = StreamRuntime(STREAM_SPEC, force_sharded=True).run()
        assert forced.metrics.per_shard[0].promised_quality == (
            plain.metrics.promised_quality
        )
        assert forced.plan_signature == plain.plan_signature

    def test_build_runtime_rejects_non_spec(self):
        with pytest.raises(SpecError):
            build_runtime({"mode": "plain"})

    def test_recover_runtime_missing_journal_raises_typed(self, tmp_path):
        with pytest.raises(SpecError):
            recover_runtime(tmp_path / "nothing-here")


class TestTelemetrySeam:
    """Telemetry rides the same layer seam: attaching it must not
    change a single byte of the run it observes."""

    def test_stream_telemetry_off_identity(self):
        bare = build_runtime(STREAM_SPEC).run()
        telemetered = build_runtime(STREAM_SPEC.replace(telemetry=True)).run()
        assert bare.telemetry is None
        assert telemetered.telemetry is not None
        assert telemetered.plan_signature == bare.plan_signature
        assert telemetered.metrics == bare.metrics
        assert repr(telemetered.counters) == repr(bare.counters)

    def test_sharded_journaled_telemetry_off_identity(self, tmp_path):
        base = STREAM_SPEC.replace(shards=2)
        bare = build_runtime(
            base.replace(journal=str(tmp_path / "bare"))
        ).run()
        telemetered = build_runtime(
            base.replace(journal=str(tmp_path / "obs"), telemetry=True)
        ).run()
        assert telemetered.plan_signature == bare.plan_signature
        assert telemetered.metrics.per_shard == bare.metrics.per_shard
        assert repr(telemetered.counters) == repr(bare.counters)
        # The profiler saw the journal layer's hooks while the run
        # stayed identical: attribution without perturbation.
        assert "journal" in telemetered.telemetry.profiler(0).stats


class TestDeprecationShims:
    """Satellite: legacy constructors keep working, warn once, and are
    byte-identical to the factory composition."""

    def test_plain_journal_shim_matches_factory(self, tmp_path):
        spec = STREAM_SPEC.replace(journal=str(tmp_path / "factory"))
        factory = build_runtime(spec).run()

        scenario = build_runtime(STREAM_SPEC).scenario()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = JournaledStreamingServer(
                scenario.bbox,
                journal=tmp_path / "shim",
                snapshot_every=spec.snapshot_every,
                **_legacy_kwargs(spec),
            )
        shim_metrics = shim.run(list(scenario.events))

        assert shim_metrics == factory.metrics
        assert shim.assignment().plan_signature() == factory.plan_signature
        assert shim_metrics.counters == factory.counters
        # Both spellings drive the same layer implementation.
        assert journal_layer(shim).journal.wal.records_appended == (
            journal_layer(factory.server).journal.wal.records_appended
        )

    def test_sharded_journal_shim_matches_factory(self, tmp_path):
        spec = STREAM_SPEC.replace(
            shards=2, journal=str(tmp_path / "factory-sharded")
        )
        factory = build_runtime(spec).run()

        scenario = build_runtime(STREAM_SPEC).scenario()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = JournaledShardedStreamingServer(
                scenario.bbox,
                journal_root=tmp_path / "shim-sharded",
                num_shards=2,
                snapshot_every=spec.snapshot_every,
                **_legacy_kwargs(spec),
            )
        shim_metrics = shim.run(list(scenario.events))

        assert shim_metrics.per_shard == factory.metrics.per_shard
        assert shim_metrics.makespan == factory.metrics.makespan
        assert shim.assignment().plan_signature() == factory.plan_signature
        assert [s.counters for s in shim.servers] == list(factory.counters)

    def test_shims_warn_exactly_once_per_process(self, tmp_path):
        reset_deprecation_warnings()
        scenario = build_runtime(STREAM_SPEC).scenario()
        with pytest.warns(DeprecationWarning, match="JournaledStreamingServer"):
            JournaledStreamingServer(
                scenario.bbox, journal=tmp_path / "w1",
                **_legacy_kwargs(STREAM_SPEC),
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # Second construction: the shim must stay silent.
            JournaledStreamingServer(
                scenario.bbox, journal=tmp_path / "w2",
                **_legacy_kwargs(STREAM_SPEC),
            )
        reset_deprecation_warnings()
