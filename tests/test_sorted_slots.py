"""Unit and property tests for repro.util.sorted_slots."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.sorted_slots import SortedSlots


class TestBasics:
    def test_empty(self):
        s = SortedSlots()
        assert len(s) == 0
        assert 5 not in s
        assert s.nearest(5) is None
        assert s.k_nearest(5, 3) == []

    def test_construction_dedupes_and_sorts(self):
        s = SortedSlots([5, 1, 5, 3, 1])
        assert s.as_list() == [1, 3, 5]

    def test_add_returns_novelty(self):
        s = SortedSlots()
        assert s.add(4) is True
        assert s.add(4) is False
        assert s.as_list() == [4]

    def test_remove(self):
        s = SortedSlots([1, 2, 3])
        s.remove(2)
        assert s.as_list() == [1, 3]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            SortedSlots([1]).remove(9)

    def test_contains(self):
        s = SortedSlots([2, 4])
        assert 2 in s and 4 in s and 3 not in s

    def test_iteration_is_sorted(self):
        assert list(SortedSlots([9, 1, 5])) == [1, 5, 9]


class TestKNearest:
    def test_paper_example(self):
        # Fig. 2: executed {2, 4}; 2-NN of slot 1 is {2, 4}.
        s = SortedSlots([2, 4])
        assert sorted(s.k_nearest(1, 2)) == [2, 4]

    def test_tie_prefers_smaller_index(self):
        s = SortedSlots([3, 7])
        # Slot 5 is at distance 2 from both; the smaller index wins first.
        assert s.k_nearest(5, 1) == [3]
        assert s.k_nearest(5, 2) == [3, 7]

    def test_exclude(self):
        s = SortedSlots([3, 5, 7])
        assert s.k_nearest(5, 2, exclude=5) == [3, 7]

    def test_k_larger_than_population(self):
        s = SortedSlots([10])
        assert s.k_nearest(4, 5) == [10]

    def test_k_zero(self):
        assert SortedSlots([1, 2]).k_nearest(1, 0) == []

    def test_results_sorted_by_distance(self):
        s = SortedSlots([1, 4, 6, 9])
        result = s.k_nearest(5, 4)
        distances = [abs(e - 5) for e in result]
        assert distances == sorted(distances)


class TestDirectionalQueries:
    def test_kth_left(self):
        s = SortedSlots([2, 5, 8])
        assert s.kth_left(9, 1) == 8
        assert s.kth_left(9, 3) == 2
        assert s.kth_left(9, 4) is None
        assert s.kth_left(2, 1) is None

    def test_kth_right(self):
        s = SortedSlots([2, 5, 8])
        assert s.kth_right(1, 1) == 2
        assert s.kth_right(2, 1) == 5  # strictly above
        assert s.kth_right(8, 1) is None

    def test_count_below(self):
        s = SortedSlots([2, 5, 8])
        assert s.count_below(5) == 1
        assert s.count_below(9) == 3
        assert s.count_below(2) == 0

    def test_count_in(self):
        s = SortedSlots([2, 5, 8])
        assert s.count_in(2, 8) == 3
        assert s.count_in(3, 7) == 1
        assert s.count_in(6, 4) == 0


@given(
    slots=st.lists(st.integers(1, 60), max_size=25),
    query=st.integers(1, 60),
    k=st.integers(1, 6),
)
def test_k_nearest_matches_brute_force(slots, query, k):
    """The bisect-based query agrees with an exhaustive sort."""
    s = SortedSlots(slots)
    got = s.k_nearest(query, k)
    expected = sorted(set(slots), key=lambda e: (abs(e - query), e))[:k]
    assert got == expected


@given(
    slots=st.lists(st.integers(1, 60), min_size=1, max_size=25),
    query=st.integers(1, 60),
)
def test_kth_left_right_match_brute_force(slots, query):
    s = SortedSlots(slots)
    uniq = sorted(set(slots))
    below = [e for e in uniq if e < query]
    above = [e for e in uniq if e > query]
    for k in range(1, 5):
        assert s.kth_left(query, k) == (below[-k] if len(below) >= k else None)
        assert s.kth_right(query, k) == (above[k - 1] if len(above) >= k else None)
