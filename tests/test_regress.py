"""The continuous op-count regression ledger (PR 9).

Unit coverage for :mod:`repro.obs.regress` (fingerprints, drift
comparison, baseline files) and the :mod:`repro.bench.regresssuite`
check/update flow against a temporary ledger directory.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import regresssuite
from repro.obs.regress import (
    LEDGER_FORMAT,
    compare_fingerprints,
    fingerprint_outcome,
    load_baseline,
    write_baseline,
)
from repro.runtime import RunSpec, WorkloadSpec, build_runtime

STREAM_SPEC = RunSpec(
    mode="stream",
    telemetry=True,
    workload=WorkloadSpec(
        horizon=10, task_rate=0.3, task_slots=8, initial_workers=12,
        join_rate=0.8, mean_lifetime=12.0, seed=9,
    ),
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8, snapshot_every=2,
)


@pytest.fixture(scope="module")
def fingerprint():
    return fingerprint_outcome(build_runtime(STREAM_SPEC.validate()).run())


class TestFingerprint:
    def test_two_runs_fingerprint_identically(self, fingerprint):
        again = fingerprint_outcome(build_runtime(STREAM_SPEC.validate()).run())
        assert fingerprint == again

    def test_fields(self, fingerprint):
        assert set(fingerprint) == {
            "plan", "plan_records", "counters", "trace", "critical_path",
        }
        assert fingerprint["critical_path"]["total"] > 0
        assert fingerprint["trace"]["solve"] >= 1

    def test_no_wall_clock_anywhere(self, fingerprint):
        text = json.dumps(fingerprint)
        assert "wall" not in text
        assert "timing" not in text

    def test_sharded_counters_are_per_shard(self):
        outcome = build_runtime(STREAM_SPEC.replace(shards=2).validate()).run()
        counters = fingerprint_outcome(outcome)["counters"]
        assert isinstance(counters, list) and len(counters) == 2


class TestCompare:
    def test_identical_is_clean(self, fingerprint):
        assert compare_fingerprints(fingerprint, fingerprint) == []

    def test_drift_names_the_flattened_path(self, fingerprint):
        mutated = json.loads(json.dumps(fingerprint))
        mutated["critical_path"]["total"] += 1.0
        drifts = compare_fingerprints(fingerprint, mutated)
        assert len(drifts) == 1
        assert drifts[0].startswith("critical_path.total:")

    def test_missing_and_extra_fields_drift(self, fingerprint):
        mutated = json.loads(json.dumps(fingerprint))
        del mutated["plan_records"]
        mutated["novel"] = 1
        drifts = compare_fingerprints(fingerprint, mutated)
        assert any("vanished" in d for d in drifts)
        assert any("not in baseline" in d for d in drifts)

    def test_tolerance_prefix_allows_bounded_movement(self, fingerprint):
        mutated = json.loads(json.dumps(fingerprint))
        base = mutated["critical_path"]["total"]
        mutated["critical_path"]["total"] = base * 1.03
        tolerances = {"critical_path": 0.05}
        assert compare_fingerprints(
            fingerprint, mutated, tolerances=tolerances
        ) == []
        mutated["critical_path"]["total"] = base * 1.2
        assert compare_fingerprints(
            fingerprint, mutated, tolerances=tolerances
        ) != []

    def test_tolerance_never_excuses_non_numeric_drift(self, fingerprint):
        mutated = json.loads(json.dumps(fingerprint))
        mutated["plan"] = "0" * 16
        assert compare_fingerprints(
            fingerprint, mutated, tolerances={"plan": 1.0}
        ) != []


class TestBaselineFiles:
    def test_roundtrip_and_meta(self, tmp_path, fingerprint):
        path = write_baseline(tmp_path, "cell-x", fingerprint)
        assert path.name == "cell-x.json"
        document = load_baseline(tmp_path, "cell-x")
        assert document["format"] == LEDGER_FORMAT
        assert document["cell"] == "cell-x"
        assert document["fingerprint"] == fingerprint
        assert set(document["meta"]) == {"commit", "version"}

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_baseline(tmp_path, "nope") is None


@pytest.fixture()
def small_suite(monkeypatch):
    """Shrink the suite to one cell and stub the (expensive) diff
    gates so the check/update flow stays test-sized."""
    monkeypatch.setattr(
        regresssuite,
        "REGRESS_CELLS",
        {"stream-s1": {"spec": STREAM_SPEC}},
    )
    monkeypatch.setattr(
        regresssuite,
        "_diff_gates",
        lambda: {
            "same_spec_identical": True,
            "fault_localized": True,
            "fault_seq": 0,
            "fault_span": "run",
            "fault_stable": True,
        },
    )


class TestSuiteFlow:
    def test_update_then_check(self, tmp_path, small_suite, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        assert regresssuite.run_and_write(
            update=True, results_dir=results, baselines_dir=baselines
        ) == 0
        assert (baselines / "stream-s1.json").exists()
        assert (results / "regress_suite.json").exists()
        assert (results / "BENCH_regress.json").exists()
        assert regresssuite.run_and_write(
            check=True, results_dir=results, baselines_dir=baselines
        ) == 0

    def test_check_fails_on_missing_baseline(self, tmp_path, small_suite):
        assert regresssuite.run_and_write(
            check=True,
            results_dir=tmp_path / "results",
            baselines_dir=tmp_path / "empty",
        ) == 1

    def test_check_fails_on_drift(self, tmp_path, small_suite, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        regresssuite.run_and_write(
            update=True, results_dir=results, baselines_dir=baselines
        )
        path = baselines / "stream-s1.json"
        document = json.loads(path.read_text())
        document["fingerprint"]["critical_path"]["total"] += 1.0
        path.write_text(json.dumps(document))
        assert regresssuite.run_and_write(
            check=True, results_dir=results, baselines_dir=baselines
        ) == 1
        assert "drift critical_path.total" in capsys.readouterr().err

    def test_check_and_update_are_exclusive(self, small_suite, tmp_path):
        assert regresssuite.run_and_write(
            check=True, update=True, results_dir=tmp_path
        ) == 2

    def test_report_mode_tolerates_missing_baselines(
        self, tmp_path, small_suite
    ):
        assert regresssuite.run_and_write(
            results_dir=tmp_path / "results",
            baselines_dir=tmp_path / "empty",
        ) == 0


class TestLedgerSection:
    def test_report_md_carries_ledger_status(
        self, tmp_path, small_suite, monkeypatch
    ):
        from repro.bench import collect

        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        regresssuite.run_and_write(
            update=True, results_dir=results, baselines_dir=baselines
        )
        report = collect.collect(results)
        assert "## Regression-ledger status" in report
        assert "stream-s1" in report
        assert "drift detected: none" in report
