"""Tests for the domain model: tasks, workers, assignments, budgets."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExhaustedError, ConfigurationError, WorkerUnavailableError
from repro.geo.point import Point
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task, TaskSet
from repro.model.worker import Worker, WorkerPool


class TestTask:
    def test_basic_properties(self):
        task = Task(1, Point(3, 4), 10)
        assert task.m == 10
        assert list(task.slots) == list(range(1, 11))
        assert task.global_slot(1) == 1
        assert task.temporal_distance(2, 4) == 2

    def test_start_slot_offsets_global(self):
        task = Task(1, Point(0, 0), 5, start_slot=10)
        assert task.global_slot(1) == 10
        assert task.global_slot(5) == 14

    def test_rejects_tiny_m(self):
        with pytest.raises(ConfigurationError):
            Task(1, Point(0, 0), 2)

    def test_rejects_bad_start(self):
        with pytest.raises(ConfigurationError):
            Task(1, Point(0, 0), 5, start_slot=0)

    def test_global_slot_bounds(self):
        task = Task(1, Point(0, 0), 5)
        with pytest.raises(ConfigurationError):
            task.global_slot(0)
        with pytest.raises(ConfigurationError):
            task.global_slot(6)

    def test_frozen(self):
        task = Task(1, Point(0, 0), 5)
        with pytest.raises(AttributeError):
            task.num_slots = 7


class TestTaskSet:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSet([Task(1, Point(0, 0), 5), Task(1, Point(1, 1), 5)])

    def test_add_and_lookup(self):
        tasks = TaskSet()
        tasks.add(Task(7, Point(0, 0), 5))
        assert tasks.by_id(7).task_id == 7
        with pytest.raises(KeyError):
            tasks.by_id(8)
        with pytest.raises(ConfigurationError):
            tasks.add(Task(7, Point(1, 1), 5))

    def test_totals(self):
        tasks = TaskSet([Task(1, Point(0, 0), 5), Task(2, Point(0, 0), 7, start_slot=3)])
        assert tasks.total_slots == 12
        assert tasks.max_global_slot == 9
        assert len(tasks) == 2
        assert tasks[0].task_id == 1

    def test_empty(self):
        assert TaskSet().max_global_slot == 0


class TestWorker:
    def test_availability(self):
        worker = Worker(1, {3: Point(0, 0), 5: Point(1, 1)})
        assert worker.is_available(3)
        assert not worker.is_available(4)
        assert worker.location_at(5) == Point(1, 1)
        assert worker.active_slots == [3, 5]

    def test_location_at_unavailable_raises(self):
        worker = Worker(1, {3: Point(0, 0)})
        with pytest.raises(WorkerUnavailableError):
            worker.location_at(9)

    def test_reliability_bounds(self):
        with pytest.raises(ConfigurationError):
            Worker(1, {}, reliability=1.2)
        with pytest.raises(ConfigurationError):
            Worker(1, {}, reliability=-0.1)

    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            Worker(1, {0: Point(0, 0)})


class TestWorkerPool:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool([Worker(1, {}), Worker(1, {})])

    def test_available_at(self):
        pool = WorkerPool(
            [Worker(2, {1: Point(0, 0)}), Worker(1, {1: Point(1, 1)}), Worker(3, {2: Point(0, 0)})]
        )
        available = pool.available_at(1)
        assert [w.worker_id for w in available] == [1, 2]

    def test_max_slot(self):
        pool = WorkerPool([Worker(1, {4: Point(0, 0)}), Worker(2, {})])
        assert pool.max_slot == 4
        assert WorkerPool([]).max_slot == 0

    def test_by_id(self):
        pool = WorkerPool([Worker(5, {})])
        assert pool.by_id(5).worker_id == 5
        with pytest.raises(KeyError):
            pool.by_id(6)


class TestAssignment:
    def test_add_rejects_duplicate_slot(self):
        assignment = Assignment()
        assignment.add(AssignmentRecord(1, 2, 10, 1.0))
        with pytest.raises(ConfigurationError):
            assignment.add(AssignmentRecord(1, 2, 11, 2.0))

    def test_total_cost_and_queries(self):
        assignment = Assignment()
        assignment.add(AssignmentRecord(1, 2, 10, 1.0))
        assignment.add(AssignmentRecord(1, 5, 10, 2.0))
        assignment.add(AssignmentRecord(2, 2, 11, 3.0))
        assert assignment.total_cost == pytest.approx(6.0)
        assert assignment.executed_slots(1) == [2, 5]
        assert len(assignment.records_for(2)) == 1
        assert assignment.worker_load() == {10: 2, 11: 1}
        assert assignment.plan_signature() == ((1, 2, 10), (1, 5, 10), (2, 2, 11))

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            AssignmentRecord(1, 2, 3, -1.0)


class TestBudget:
    def test_charge_and_remaining(self):
        budget = Budget(10.0)
        budget.charge(4.0)
        assert budget.spent == pytest.approx(4.0)
        assert budget.remaining == pytest.approx(6.0)
        assert budget.can_afford(6.0)
        assert not budget.can_afford(6.1)

    def test_overcharge_raises(self):
        budget = Budget(1.0)
        with pytest.raises(BudgetExhaustedError):
            budget.charge(2.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigurationError):
            Budget(1.0).charge(-0.5)

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            Budget(-1.0)

    def test_fork_is_independent(self):
        budget = Budget(10.0)
        budget.charge(3.0)
        clone = budget.fork()
        clone.charge(2.0)
        assert budget.spent == pytest.approx(3.0)
        assert clone.spent == pytest.approx(5.0)
