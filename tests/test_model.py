"""Tests for the domain model: tasks, workers, assignments, budgets."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import BudgetExhaustedError, ConfigurationError, WorkerUnavailableError
from repro.geo.point import Point
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task, TaskSet
from repro.model.worker import Worker, WorkerPool


class TestTask:
    def test_basic_properties(self):
        task = Task(1, Point(3, 4), 10)
        assert task.m == 10
        assert list(task.slots) == list(range(1, 11))
        assert task.global_slot(1) == 1
        assert task.temporal_distance(2, 4) == 2

    def test_start_slot_offsets_global(self):
        task = Task(1, Point(0, 0), 5, start_slot=10)
        assert task.global_slot(1) == 10
        assert task.global_slot(5) == 14

    def test_rejects_tiny_m(self):
        with pytest.raises(ConfigurationError):
            Task(1, Point(0, 0), 2)

    def test_rejects_bad_start(self):
        with pytest.raises(ConfigurationError):
            Task(1, Point(0, 0), 5, start_slot=0)

    def test_global_slot_bounds(self):
        task = Task(1, Point(0, 0), 5)
        with pytest.raises(ConfigurationError):
            task.global_slot(0)
        with pytest.raises(ConfigurationError):
            task.global_slot(6)

    def test_frozen(self):
        task = Task(1, Point(0, 0), 5)
        with pytest.raises(AttributeError):
            task.num_slots = 7


class TestTaskSet:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSet([Task(1, Point(0, 0), 5), Task(1, Point(1, 1), 5)])

    def test_add_and_lookup(self):
        tasks = TaskSet()
        tasks.add(Task(7, Point(0, 0), 5))
        assert tasks.by_id(7).task_id == 7
        with pytest.raises(KeyError):
            tasks.by_id(8)
        with pytest.raises(ConfigurationError):
            tasks.add(Task(7, Point(1, 1), 5))

    def test_totals(self):
        tasks = TaskSet([Task(1, Point(0, 0), 5), Task(2, Point(0, 0), 7, start_slot=3)])
        assert tasks.total_slots == 12
        assert tasks.max_global_slot == 9
        assert len(tasks) == 2
        assert tasks[0].task_id == 1

    def test_empty(self):
        assert TaskSet().max_global_slot == 0


class TestWorker:
    def test_availability(self):
        worker = Worker(1, {3: Point(0, 0), 5: Point(1, 1)})
        assert worker.is_available(3)
        assert not worker.is_available(4)
        assert worker.location_at(5) == Point(1, 1)
        assert worker.active_slots == [3, 5]

    def test_location_at_unavailable_raises(self):
        worker = Worker(1, {3: Point(0, 0)})
        with pytest.raises(WorkerUnavailableError):
            worker.location_at(9)

    def test_reliability_bounds(self):
        with pytest.raises(ConfigurationError):
            Worker(1, {}, reliability=1.2)
        with pytest.raises(ConfigurationError):
            Worker(1, {}, reliability=-0.1)

    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            Worker(1, {0: Point(0, 0)})


class TestWorkerPool:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool([Worker(1, {}), Worker(1, {})])

    def test_available_at(self):
        pool = WorkerPool(
            [Worker(2, {1: Point(0, 0)}), Worker(1, {1: Point(1, 1)}), Worker(3, {2: Point(0, 0)})]
        )
        available = pool.available_at(1)
        assert [w.worker_id for w in available] == [1, 2]

    def test_max_slot(self):
        pool = WorkerPool([Worker(1, {4: Point(0, 0)}), Worker(2, {})])
        assert pool.max_slot == 4
        assert WorkerPool([]).max_slot == 0

    def test_by_id(self):
        pool = WorkerPool([Worker(5, {})])
        assert pool.by_id(5).worker_id == 5
        with pytest.raises(KeyError):
            pool.by_id(6)


class TestAssignment:
    def test_add_rejects_duplicate_slot(self):
        assignment = Assignment()
        assignment.add(AssignmentRecord(1, 2, 10, 1.0))
        with pytest.raises(ConfigurationError):
            assignment.add(AssignmentRecord(1, 2, 11, 2.0))

    def test_total_cost_and_queries(self):
        assignment = Assignment()
        assignment.add(AssignmentRecord(1, 2, 10, 1.0))
        assignment.add(AssignmentRecord(1, 5, 10, 2.0))
        assignment.add(AssignmentRecord(2, 2, 11, 3.0))
        assert assignment.total_cost == pytest.approx(6.0)
        assert assignment.executed_slots(1) == [2, 5]
        assert len(assignment.records_for(2)) == 1
        assert assignment.worker_load() == {10: 2, 11: 1}
        assert assignment.plan_signature() == ((1, 2, 10), (1, 5, 10), (2, 2, 11))

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            AssignmentRecord(1, 2, 3, -1.0)


class TestBudget:
    def test_charge_and_remaining(self):
        budget = Budget(10.0)
        budget.charge(4.0)
        assert budget.spent == pytest.approx(4.0)
        assert budget.remaining == pytest.approx(6.0)
        assert budget.can_afford(6.0)
        assert not budget.can_afford(6.1)

    def test_overcharge_raises(self):
        budget = Budget(1.0)
        with pytest.raises(BudgetExhaustedError):
            budget.charge(2.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigurationError):
            Budget(1.0).charge(-0.5)

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            Budget(-1.0)

    def test_fork_is_independent(self):
        budget = Budget(10.0)
        budget.charge(3.0)
        clone = budget.fork()
        clone.charge(2.0)
        assert budget.spent == pytest.approx(3.0)
        assert clone.spent == pytest.approx(5.0)


class TestSerialization:
    """to_dict/from_dict round trips (the journal's model codec)."""

    def test_task_round_trip_exact(self):
        task = Task(3, Point(1.25, -0.75), 12, start_slot=5)
        clone = Task.from_dict(json.loads(json.dumps(task.to_dict())))
        assert clone == task

    def test_task_from_dict_revalidates(self):
        payload = Task(1, Point(0, 0), 5).to_dict()
        payload["num_slots"] = 2
        with pytest.raises(ConfigurationError):
            Task.from_dict(payload)

    def test_worker_round_trip_exact(self):
        worker = Worker(
            9, {2: Point(0.1, 0.2), 5: Point(3.33, 4.44)}, reliability=0.625
        )
        clone = Worker.from_dict(json.loads(json.dumps(worker.to_dict())))
        assert clone == worker
        assert clone.availability[5] == Point(3.33, 4.44)

    def test_worker_availability_canonicalized_ascending(self):
        worker = Worker(1, {7: Point(1, 1), 2: Point(0, 0)})
        payload = worker.to_dict()
        assert [entry[0] for entry in payload["availability"]] == [2, 7]

    def test_worker_from_dict_revalidates(self):
        payload = Worker(1, {1: Point(0, 0)}).to_dict()
        payload["reliability"] = 1.5
        with pytest.raises(ConfigurationError):
            Worker.from_dict(payload)

    def test_record_round_trip_exact(self):
        record = AssignmentRecord(4, 7, 11, 2.7182818284590455)
        clone = AssignmentRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone == record
        assert clone.cost == record.cost  # bit-exact, not approx

    def test_assignment_round_trip_preserves_order_and_duplicates_check(self):
        plan = Assignment()
        plan.add(AssignmentRecord(1, 5, 10, 2.0))
        plan.add(AssignmentRecord(1, 2, 10, 1.5))
        clone = Assignment.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.plan_signature() == plan.plan_signature()
        payload = plan.to_dict()
        payload["records"].append(payload["records"][0])
        with pytest.raises(ConfigurationError):
            Assignment.from_dict(payload)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_property_random_plans_signature_preserved(self, seed):
        """Property test: for randomized plans, workers, and tasks, a
        JSON round trip preserves ``plan_signature()`` byte-for-byte
        and every float bit-for-bit."""
        rng = random.Random(seed)
        tasks = [
            Task(
                tid,
                Point(rng.uniform(-50, 50), rng.uniform(-50, 50)),
                rng.randint(3, 40),
                start_slot=rng.randint(1, 20),
            )
            for tid in range(rng.randint(1, 6))
        ]
        workers = [
            Worker(
                wid,
                {
                    slot: Point(rng.uniform(0, 100), rng.uniform(0, 100))
                    for slot in rng.sample(range(1, 60), rng.randint(1, 10))
                },
                reliability=rng.uniform(0.0, 1.0),
            )
            for wid in range(rng.randint(1, 8))
        ]
        plan = Assignment()
        for task in tasks:
            for slot in rng.sample(list(task.slots), min(3, task.num_slots)):
                worker = rng.choice(workers)
                plan.add(
                    AssignmentRecord(
                        task.task_id, slot, worker.worker_id, rng.uniform(0, 9)
                    )
                )

        blob = json.dumps(
            {
                "tasks": [t.to_dict() for t in tasks],
                "workers": [w.to_dict() for w in workers],
                "plan": plan.to_dict(),
            },
            sort_keys=True,
        )
        decoded = json.loads(blob)
        assert [Task.from_dict(t) for t in decoded["tasks"]] == tasks
        assert [Worker.from_dict(w) for w in decoded["workers"]] == workers
        restored = Assignment.from_dict(decoded["plan"])
        assert restored.plan_signature() == plan.plan_signature()
        assert [r.cost for r in restored.records] == [r.cost for r in plan.records]
