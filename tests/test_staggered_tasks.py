"""Multi-task assignment with *staggered* task windows.

The scenario builder aligns all tasks at global slot 1, but nothing in
the solvers requires that: tasks may start at different global slots
(real platforms receive tasks continuously).  These tests exercise the
local-to-global slot mapping through the whole stack — cost providers,
conflict detection, and both multi-task objectives.
"""

from __future__ import annotations

import pytest

from repro.core.quality import task_quality
from repro.engine.registry import WorkerRegistry
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.task import Task, TaskSet
from repro.multi.mmqm import MinQualityGreedy
from repro.multi.msqm import SumQualityGreedy
from repro.workloads.trajectories import TaxiTrajectoryGenerator

BOX = BoundingBox.square(100.0)


@pytest.fixture(scope="module")
def staggered():
    """Three overlapping 20-slot tasks starting at slots 1, 8, and 16."""
    tasks = TaskSet(
        [
            Task(0, Point(30, 30), 20, start_slot=1),
            Task(1, Point(35, 35), 20, start_slot=8),
            Task(2, Point(60, 60), 20, start_slot=16),
        ]
    )
    pool = TaxiTrajectoryGenerator(
        BOX, horizon=40, windows_per_worker=(2, 5), seed=13
    ).pool(120)
    return tasks, pool


def _budget(tasks, pool):
    from repro.engine.costs import SingleTaskCostTable

    registry = WorkerRegistry(pool, BOX)
    total = sum(
        SingleTaskCostTable(task, registry).total_cost for task in tasks
    )
    return 0.3 * total


class TestStaggeredMSQM:
    def test_assigns_all_tasks(self, staggered):
        tasks, pool = staggered
        result = SumQualityGreedy(
            tasks, WorkerRegistry(pool, BOX), budget=_budget(tasks, pool)
        ).solve()
        for task in tasks:
            assert result.assignment.executed_slots(task.task_id), (
                f"task {task.task_id} (start {task.start_slot}) got nothing"
            )

    def test_worker_slots_respect_offsets(self, staggered):
        """A record's worker must actually be available at the task's
        *global* slot, not its local index."""
        tasks, pool = staggered
        result = SumQualityGreedy(
            tasks, WorkerRegistry(pool, BOX), budget=_budget(tasks, pool)
        ).solve()
        by_id = {t.task_id: t for t in tasks}
        workers = {w.worker_id: w for w in pool}
        for record in result.assignment:
            global_slot = by_id[record.task_id].global_slot(record.slot)
            assert workers[record.worker_id].is_available(global_slot)

    def test_no_double_booking_across_offsets(self, staggered):
        """Overlapping windows share the global timeline: local slot 10
        of task 0 and local slot 3 of task 1 are the same instant."""
        tasks, pool = staggered
        result = SumQualityGreedy(
            tasks, WorkerRegistry(pool, BOX), budget=_budget(tasks, pool)
        ).solve()
        by_id = {t.task_id: t for t in tasks}
        seen = set()
        for record in result.assignment:
            key = (record.worker_id, by_id[record.task_id].global_slot(record.slot))
            assert key not in seen
            seen.add(key)

    def test_qualities_use_local_slots(self, staggered):
        tasks, pool = staggered
        result = SumQualityGreedy(
            tasks, WorkerRegistry(pool, BOX), budget=_budget(tasks, pool)
        ).solve()
        workers = {w.worker_id: w for w in pool}
        for task in tasks:
            executed = {
                r.slot: workers[r.worker_id].reliability
                for r in result.assignment.records_for(task.task_id)
            }
            assert result.qualities[task.task_id] == pytest.approx(
                task_quality(task.num_slots, 3, executed)
            )

    def test_indexed_matches_enumerated(self, staggered):
        tasks, pool = staggered
        budget = _budget(tasks, pool)
        indexed = SumQualityGreedy(
            tasks, WorkerRegistry(pool, BOX), budget=budget, use_index=True
        ).solve()
        plain = SumQualityGreedy(
            tasks, WorkerRegistry(pool, BOX), budget=budget, use_index=False
        ).solve()
        assert indexed.plan_signature() == plain.plan_signature()


class TestStaggeredMMQM:
    def test_min_objective_runs(self, staggered):
        tasks, pool = staggered
        result = MinQualityGreedy(
            tasks, WorkerRegistry(pool, BOX), budget=_budget(tasks, pool)
        ).solve()
        assert result.min_quality > 0.0
        assert result.spent <= _budget(tasks, pool) + 1e-9
