"""Property tests for elastic sharding invariants (hypothesis).

Two families:

* **Placement totality** — under any legal mutation sequence the
  :class:`~repro.elastic.shardmap.ElasticShardMap` owns every logical
  shard exactly once, and under any migration schedule the elastic
  server's computation is byte-identical to the never-migrated run
  (no event is applied by two cores or dropped across an ownership
  flip).
* **Snapshot round-trip** — a live core checkpointed at any epoch and
  rebuilt through the JSON-round-tripped snapshot codec finishes with
  exactly the plan the uninterrupted core produces.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.elastic import ElasticController, ElasticShardMap, ElasticStreamingServer
from repro.journal.snapshot import restore_server_state, server_state
from repro.stream.events import EventQueue
from repro.stream.online_server import StreamingTCSCServer
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events

_CFG = StreamScenarioConfig(
    horizon=12, task_rate=0.4, task_slots=6, initial_workers=10,
    worker_join_rate=0.6, mean_worker_lifetime=10.0, seed=9,
)
_KWARGS = dict(
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8,
)

_NUM_EXECUTORS = 2
_PARTITIONS = 2
_NUM_LOGICAL = _NUM_EXECUTORS * _PARTITIONS

#: The never-migrated reference, computed once per process.
_REFERENCE: dict = {}


def _trace():
    return build_stream_events(_CFG)


def _run_elastic(controller):
    trace = _trace()
    server = ElasticStreamingServer(
        trace.bbox,
        num_executors=_NUM_EXECUTORS,
        partitions_per_executor=_PARTITIONS,
        controller=controller,
        **_KWARGS,
    )
    metrics = server.run(list(trace.events))
    return server, metrics


def _reference():
    if not _REFERENCE:
        server, metrics = _run_elastic(ElasticController.fixed([]))
        _REFERENCE.update(
            signature=server.assignment().plan_signature(),
            per_shard=metrics.per_shard,
            counters=[core.counters for core in server.servers],
            boundaries=list(metrics.boundary_times),
            total_events=sum(m.total_events for m in metrics.per_shard),
        )
    return _REFERENCE


class TestShardMapTotality:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 5)), max_size=30))
    def test_every_shard_owned_exactly_once_under_any_mutations(self, moves):
        """Random migrate/split/merge sequences never leave a shard
        unowned or doubly owned, and the version counts mutations."""
        shard_map = ElasticShardMap(8, 2)
        applied = 0
        for shard, raw_dest in moves:
            if raw_dest == 5 and len(shard_map.executors) < 8:
                shard_map.add_executor()
                applied += 1
                continue
            if raw_dest == 4:
                # Try retiring an empty executor (legal only sometimes).
                for executor in shard_map.executors:
                    if (
                        not shard_map.shards_on(executor)
                        and len(shard_map.executors) > 1
                    ):
                        shard_map.remove_executor(executor)
                        applied += 1
                        break
                continue
            dest = shard_map.executors[raw_dest % len(shard_map.executors)]
            if shard_map.executor_of(shard) != dest:
                shard_map.migrate(shard, dest)
                applied += 1
            # Totality after every step, not just at the end.
            hosted = [
                s
                for executor in shard_map.executors
                for s in shard_map.shards_on(executor)
            ]
            assert sorted(hosted) == list(range(8))
        assert shard_map.version == applied == len(shard_map.history)


class TestMigrationScheduleExactness:
    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_any_migration_schedule_is_byte_identical(self, data):
        """Every event is applied by exactly one core exactly once,
        whatever the migration schedule: the plan, the per-shard
        metrics, and the per-core op counters all match the
        never-migrated run."""
        ref = _reference()
        boundaries = ref["boundaries"]
        schedule = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(boundaries),
                    st.integers(0, _NUM_LOGICAL - 1),
                ),
                max_size=4,
                unique_by=lambda entry: entry[0],
            )
        )
        plan = [(time, shard, None) for time, shard in sorted(schedule)]
        server, metrics = _run_elastic(ElasticController.fixed(plan))

        assert server.assignment().plan_signature() == ref["signature"]
        assert metrics.per_shard == ref["per_shard"]
        assert [core.counters for core in server.servers] == ref["counters"]
        # Exactly-once: the summed event count survives every flip.
        assert (
            sum(m.total_events for m in metrics.per_shard)
            == ref["total_events"]
        )
        # Placement stayed total through the schedule.
        hosted = [
            s
            for executor in server.shard_map.executors
            for s in server.shard_map.shards_on(executor)
        ]
        assert sorted(hosted) == list(range(_NUM_LOGICAL))
        assert server.shard_map.version == len(metrics.migrations)


class TestSnapshotRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10), st.integers(0, 3))
    def test_plan_signature_round_trips_snapshot_codec(self, steps, seed_offset):
        """A core checkpointed mid-run and rebuilt from the JSON-round-
        tripped snapshot finishes byte-identically to the uninterrupted
        core — the exactness a migrated session relies on."""
        config = _CFG.with_overrides(seed=_CFG.seed + seed_offset)
        trace = build_stream_events(config)

        whole = StreamingTCSCServer(trace.bbox, **_KWARGS)
        whole_metrics = whole.run(list(trace.events))

        live = StreamingTCSCServer(trace.bbox, **_KWARGS)
        live.begin(list(build_stream_events(config).events))
        for _ in range(steps):
            if not live.pending_work():
                break
            live.step_epoch()

        state = json.loads(json.dumps(server_state(live)))
        rebuilt = StreamingTCSCServer(trace.bbox, **_KWARGS)
        restore_server_state(rebuilt, state)
        remainder = []
        while True:
            event = live._queue.pop()
            if event is None:
                break
            remainder.append(event)
        rebuilt.begin(EventQueue(remainder))
        while rebuilt.pending_work():
            rebuilt.step_epoch()
        rebuilt_metrics = rebuilt.finish()

        assert (
            rebuilt.assignment().plan_signature()
            == whole.assignment().plan_signature()
        )
        assert rebuilt_metrics == whole_metrics
        assert rebuilt.counters == whole.counters
