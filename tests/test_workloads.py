"""Tests for the workload generators (spatial, POI, trajectories, scenario)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.workloads.poi import ClusteredPOIGenerator
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution, generate_points
from repro.workloads.trajectories import TaxiTrajectoryGenerator

BOX = BoundingBox.square(100.0)


class TestSpatialGenerators:
    @pytest.mark.parametrize("dist", ["uniform", "gaussian", "zipfian", "real"])
    def test_points_inside_domain(self, dist):
        for p in generate_points(200, BOX, dist, seed=1):
            assert BOX.contains(p)

    @pytest.mark.parametrize("dist", list(Distribution))
    def test_deterministic(self, dist):
        a = generate_points(50, BOX, dist, seed=42)
        b = generate_points(50, BOX, dist, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_points(50, BOX, "uniform", seed=1)
        b = generate_points(50, BOX, "uniform", seed=2)
        assert a != b

    def test_gaussian_concentrates_at_center(self):
        points = generate_points(2000, BOX, "gaussian", seed=3)
        xs = np.array([p.x for p in points])
        # Paper: mean = domain center, sigma = side/6.
        assert abs(xs.mean() - 50.0) < 2.0
        assert abs(xs.std() - 100.0 / 6) < 2.0

    def test_zipfian_skews_to_origin(self):
        points = generate_points(2000, BOX, "zipfian", seed=3)
        xs = np.array([p.x for p in points])
        assert np.median(xs) < 25.0  # heavy mass near the low corner

    def test_uniform_spreads(self):
        points = generate_points(2000, BOX, "uniform", seed=3)
        xs = np.array([p.x for p in points])
        assert 45.0 < xs.mean() < 55.0

    def test_rejects_negative_n(self):
        with pytest.raises(ConfigurationError):
            generate_points(-1, BOX, "uniform")

    def test_rejects_bad_zipf_exponent(self):
        with pytest.raises(ConfigurationError):
            generate_points(10, BOX, "zipfian", zipf_exponent=0.0)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate_points(10, BOX, "pareto")


class TestPOIGenerator:
    def test_points_inside_domain(self):
        for p in ClusteredPOIGenerator(BOX, seed=1).generate(300):
            assert BOX.contains(p)

    def test_clustered_tighter_than_uniform(self):
        poi = ClusteredPOIGenerator(BOX, background_fraction=0.0, seed=5).generate(1500)
        uniform = generate_points(1500, BOX, "uniform", seed=5)

        def nn_dist_sample(points):
            pts = points[:200]
            total = 0.0
            for i, p in enumerate(pts):
                total += min(p.distance_to(q) for j, q in enumerate(pts) if j != i)
            return total / len(pts)

        assert nn_dist_sample(poi) < nn_dist_sample(uniform)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusteredPOIGenerator(BOX, num_hotspots=0)
        with pytest.raises(ConfigurationError):
            ClusteredPOIGenerator(BOX, background_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ClusteredPOIGenerator(BOX).generate(-1)


class TestTrajectories:
    def test_worker_windows_are_short(self):
        gen = TaxiTrajectoryGenerator(BOX, horizon=50, seed=2)
        pool = gen.pool(40)
        for worker in pool:
            slots = worker.active_slots
            if not slots:
                continue
            # Decompose into consecutive runs; each must be 1..5 slots.
            runs, run = [], 1
            for a, b in zip(slots, slots[1:]):
                if b == a + 1:
                    run += 1
                else:
                    runs.append(run)
                    run = 1
            runs.append(run)
            assert all(1 <= r <= 5 for r in runs)

    def test_slots_within_horizon(self):
        gen = TaxiTrajectoryGenerator(BOX, horizon=30, seed=2)
        worker = gen.worker(0)
        assert all(1 <= s <= 30 for s in worker.availability)

    def test_locations_within_domain(self):
        gen = TaxiTrajectoryGenerator(BOX, horizon=30, seed=2)
        for slot, loc in gen.worker(0).availability.items():
            assert BOX.contains(loc)

    def test_trajectory_moves_continuously(self):
        gen = TaxiTrajectoryGenerator(BOX, horizon=40, speed_fraction=0.02, seed=4)
        path = gen.trajectory()
        max_step = 0.02 * 100.0 * 1.5 + 1e-9
        for a, b in zip(path, path[1:]):
            assert a.distance_to(b) <= max_step

    def test_reliability_range(self):
        gen = TaxiTrajectoryGenerator(BOX, horizon=20, seed=3)
        pool = gen.pool(30, reliability_range=(0.4, 0.9))
        for worker in pool:
            assert 0.4 <= worker.reliability <= 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaxiTrajectoryGenerator(BOX, horizon=0)
        with pytest.raises(ConfigurationError):
            TaxiTrajectoryGenerator(BOX, horizon=10, min_window=3, max_window=2)
        with pytest.raises(ConfigurationError):
            TaxiTrajectoryGenerator(BOX, horizon=10, hotspot_bias=2.0)
        gen = TaxiTrajectoryGenerator(BOX, horizon=10)
        with pytest.raises(ConfigurationError):
            gen.pool(5, reliability_range=(0.9, 0.4))


class TestScenarioBuilder:
    def test_deterministic(self):
        cfg = ScenarioConfig(num_tasks=2, num_slots=20, num_workers=50, seed=5)
        a = build_scenario(cfg)
        b = build_scenario(cfg)
        assert [t.loc for t in a.tasks] == [t.loc for t in b.tasks]
        assert a.budget == pytest.approx(b.budget)

    def test_changing_task_count_keeps_worker_streams(self):
        base = ScenarioConfig(num_tasks=1, num_slots=20, num_workers=50, seed=5)
        more = base.with_overrides(num_tasks=3)
        a = build_scenario(base)
        b = build_scenario(more)
        assert a.pool.by_id(0).availability == b.pool.by_id(0).availability

    def test_budget_fraction(self):
        cfg = ScenarioConfig(num_tasks=1, num_slots=20, num_workers=80, seed=5,
                             budget_fraction=0.5)
        scenario = build_scenario(cfg)
        assert scenario.budget > 0

    def test_absolute_budget(self):
        cfg = ScenarioConfig(num_tasks=1, num_slots=20, num_workers=80, seed=5, budget=42.0)
        assert build_scenario(cfg).budget == 42.0

    def test_single_task_accessor(self):
        multi = build_scenario(ScenarioConfig(num_tasks=2, num_slots=20, num_workers=50, seed=5))
        with pytest.raises(ConfigurationError):
            _ = multi.single_task

    def test_fresh_registry_is_independent(self):
        scenario = build_scenario(
            ScenarioConfig(num_tasks=1, num_slots=20, num_workers=50, seed=5)
        )
        r1 = scenario.fresh_registry()
        r2 = scenario.fresh_registry()
        assert r1 is not r2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(num_tasks=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(budget_fraction=0.0)
