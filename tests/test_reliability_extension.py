"""End-to-end tests of the worker-reliability extension (Eq. 4-5)."""

from __future__ import annotations

import pytest

from repro.core.greedy import IndexedSingleTaskGreedy, SingleTaskGreedy
from repro.core.quality import error_ratio, finishing_probability, task_quality
from repro.engine.costs import SingleTaskCostTable
from repro.multi.msqm import SumQualityGreedy
from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def unreliable_scenario():
    return build_scenario(
        ScenarioConfig(
            num_tasks=1,
            num_slots=40,
            num_workers=250,
            seed=29,
            reliability_range=(0.3, 1.0),
        )
    )


class TestEquationDegeneration:
    def test_eq5_degenerates_to_eq3_at_unit_lambda(self):
        """Paper: 'If ... the reliability of each worker ... equals 1,
        Equation 5 degenerates into Equation 3.'"""
        neighbors_weighted = [(2, 1.0), (5, 1.0), (9, 1.0)]
        assert error_ratio(50, 3, neighbors_weighted) == pytest.approx(
            (2 + 5 + 9) / (3 * 50)
        )

    def test_executed_probability_scales_with_lambda(self):
        for lam in (0.2, 0.5, 1.0):
            p = finishing_probability(20, 3, None, executed_reliability=lam)
            assert p == pytest.approx(lam / 20)

    def test_interpolated_probability_scales_with_neighbor_lambda(self):
        strong = finishing_probability(20, 1, [(3, 1.0)])
        weak = finishing_probability(20, 1, [(3, 0.5)])
        assert weak == pytest.approx(strong * 0.5)


class TestSolversWithReliability:
    def test_workers_carry_heterogeneous_lambdas(self, unreliable_scenario):
        lambdas = {w.reliability for w in unreliable_scenario.pool}
        assert len(lambdas) > 10
        assert all(0.3 <= lam <= 1.0 for lam in lambdas)

    def test_indexed_matches_enumerated(self, unreliable_scenario):
        """The tree index's bounds stay sound with reliabilities."""
        scenario = unreliable_scenario
        costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
        local = SingleTaskGreedy(
            scenario.single_task, costs, budget=scenario.budget, strategy="local"
        ).solve()
        indexed = IndexedSingleTaskGreedy(
            scenario.single_task, costs, budget=scenario.budget
        ).solve()
        assert local.assignment.plan_signature() == indexed.assignment.plan_signature()

    def test_quality_accounts_for_lambdas(self, unreliable_scenario):
        scenario = unreliable_scenario
        costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
        result = IndexedSingleTaskGreedy(
            scenario.single_task, costs, budget=scenario.budget
        ).solve()
        executed = {r.slot: costs.reliability(r.slot) for r in result.assignment}
        assert result.quality == pytest.approx(
            task_quality(scenario.single_task.num_slots, 3, executed)
        )
        # With imperfect workers the quality must be strictly below the
        # unit-reliability quality of the same slots.
        perfect = task_quality(
            scenario.single_task.num_slots, 3, {s: 1.0 for s in executed}
        )
        assert result.quality < perfect

    def test_multi_task_with_reliability(self):
        scenario = build_scenario(
            ScenarioConfig(
                num_tasks=5,
                num_slots=20,
                num_workers=120,
                seed=31,
                reliability_range=(0.4, 1.0),
            )
        )
        budget = scenario.budget * 5
        indexed = SumQualityGreedy(
            scenario.tasks, scenario.fresh_registry(), budget=budget, use_index=True
        ).solve()
        plain = SumQualityGreedy(
            scenario.tasks, scenario.fresh_registry(), budget=budget, use_index=False
        ).solve()
        assert indexed.plan_signature() == plain.plan_signature()
        for task in scenario.tasks:
            records = indexed.assignment.records_for(task.task_id)
            executed = {
                r.slot: scenario.pool.by_id(r.worker_id).reliability for r in records
            }
            assert indexed.qualities[task.task_id] == pytest.approx(
                task_quality(task.num_slots, 3, executed)
            )


class TestCostTypeGenerality:
    """The paper: 'Our work is general w.r.t. the type of cost.'  The
    solvers consume only a cost table, so any cost function plugs in."""

    class QuadraticCosts:
        """Arbitrary non-Euclidean costs: quadratic in the slot index."""

        def __init__(self, m):
            self.m = m

        def cost(self, slot):
            return 1.0 + (slot % 7) ** 2 * 0.3

        def reliability(self, slot):
            return 1.0

        def offer(self, slot):
            from repro.engine.costs import SlotOffer

            return SlotOffer(worker_id=slot, cost=self.cost(slot), reliability=1.0)

    def test_solvers_accept_custom_costs(self):
        from repro.model.task import Task
        from repro.geo.point import Point

        task = Task(0, Point(0, 0), 30)
        costs = self.QuadraticCosts(30)
        local = SingleTaskGreedy(task, costs, budget=40.0, strategy="local").solve()
        indexed = IndexedSingleTaskGreedy(task, costs, budget=40.0).solve()
        assert local.assignment.plan_signature() == indexed.assignment.plan_signature()
        assert local.spent <= 40.0 + 1e-9
        assert local.quality > 0.0
