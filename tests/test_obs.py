"""The observability subsystem: watch everything, touch nothing.

Three layers of contract.  Unit level: the metrics primitives
(counters, gauges, log2 histograms with exact nearest-rank
percentiles) and the trace recorder's framed JSONL round trip,
including the WAL-style torn-tail tolerance.  Seam level: phase spans
read op counters without incrementing them, ``ProfiledLayer`` wraps
any serving layer while staying discoverable through ``.inner``, and
the telemetry layer's records land in deterministic order.  End to
end: a telemetered run is byte-identical to a bare run (plan, op
counters, stream metrics), repeat runs produce byte-identical traces
once ``timing`` is masked (a seeded hypothesis property), and the CLI
round trip ``simulate --telemetry --trace-out`` -> ``trace-report``
renders phase timings and latency histograms from the file alone.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.core.instrumentation import OpCounters
from repro.errors import ConfigurationError, SpecError
from repro.obs import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    PhaseProfiler,
    ProfiledLayer,
    Telemetry,
    TraceRecorder,
    mask_timing,
    masked_trace_bytes,
    read_trace,
)
from repro.obs.report import render_trace_report, summarize
from repro.runtime import RunSpec, WorkloadSpec, build_runtime

STREAM_SPEC = RunSpec(
    mode="stream",
    workload=WorkloadSpec(
        horizon=10, task_rate=0.3, task_slots=8, initial_workers=12,
        join_rate=0.8, mean_lifetime=12.0, seed=9,
    ),
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8, snapshot_every=2,
)

PLAIN_SPEC = RunSpec(
    mode="plain",
    workload=WorkloadSpec(tasks=6, slots=12, workers=150, seed=13),
)


class TestLogHistogram:
    def test_log2_bucketing(self):
        h = LogHistogram("x")
        h.observe(3.0)      # floor(log2 3) = 1 -> [2, 4)
        h.observe(2.0)      # exactly 2**1 -> same bucket
        h.observe(5.0)      # floor(log2 5) = 2 -> [4, 8)
        assert h.buckets == {1: 2, 2: 1}
        assert h.count == 3

    def test_nonpositive_goes_to_zero_bucket(self):
        h = LogHistogram("x")
        h.observe(0.0)
        h.observe(-3.0)
        assert h.zero_count == 2
        assert h.buckets == {}
        assert h.percentile(50) == 0.0

    def test_percentiles_are_exact_bucket_upper_edges(self):
        h = LogHistogram("x")
        for value in [1.0, 1.5, 3.0, 3.5, 100.0]:
            h.observe(value)
        # ranks: p50 -> 3rd of 5 -> bucket 1 (upper edge 4),
        # p99 -> 5th -> bucket 6 ([64, 128), upper edge 128).
        assert h.percentile(50) == 4.0
        assert h.percentile(99) == 128.0

    def test_empty_histogram_answers_zero(self):
        assert LogHistogram("x").percentile(95) == 0.0

    def test_render_and_to_dict(self):
        h = LogHistogram("lat")
        h.observe(0)
        h.observe(10.0)
        assert "n=2" in h.render()
        payload = h.to_dict()
        assert payload["kind"] == "histogram"
        assert payload["zero"] == 1
        assert payload["buckets"] == {"3": 1}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(1e-6, 1e9, allow_nan=False), min_size=1),
           st.floats(0.0, 100.0, allow_nan=False))
    def test_percentile_is_an_upper_bound(self, values, q):
        """The nearest-rank answer is a true upper bound for at least
        the covered fraction of observations, and monotone in q."""
        h = LogHistogram("x")
        for value in values:
            h.observe(value)
        assert h.percentile(100) >= max(values)
        assert h.percentile(q) <= h.percentile(100)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1e9, allow_nan=False), max_size=8),
        st.sampled_from([
            float("nan"), float("inf"), float("-inf"), -float("nan"),
        ]),
    )
    def test_non_finite_rejected_without_state_change(self, prefix, bad):
        """nan/inf raise typed ConfigurationError *before* any state
        mutates: count, buckets, and the zero bucket are exactly what
        they were, so later percentiles stay exact."""
        h = LogHistogram("x")
        for value in prefix:
            h.observe(value)
        before = (h.count, h.zero_count, dict(h.buckets))
        with pytest.raises(ConfigurationError):
            h.observe(bad)
        assert (h.count, h.zero_count, dict(h.buckets)) == before

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-1e9, 0.0, allow_nan=False))
    def test_any_nonpositive_lands_in_zero_bucket(self, value):
        h = LogHistogram("x")
        h.observe(value)
        assert h.zero_count == 1
        assert h.buckets == {}
        assert h.percentile(99) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(st.floats(1e-6, 1e9, allow_nan=False),
           st.floats(0.0, 100.0, allow_nan=False))
    def test_single_observation_every_percentile_is_its_edge(self, v, q):
        """n=1: nearest rank is always rank 1, so every percentile —
        including q=0 — answers the one observation's bucket edge."""
        import math
        h = LogHistogram("x")
        h.observe(v)
        assert h.percentile(q) == 2.0 ** (math.floor(math.log2(v)) + 1)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(1e-6, 1e9, allow_nan=False),
           st.floats(1e-6, 1e9, allow_nan=False))
    def test_two_observations_nearest_rank_split(self, a, b):
        """n=2: ceil(q/100 * 2) puts q <= 50 on rank 1 (the lower
        bucket edge) and q > 50 on rank 2 (the upper one); q=0 clamps
        to rank 1."""
        import math
        lo, hi = sorted([a, b])
        edge = lambda v: 2.0 ** (math.floor(math.log2(v)) + 1)
        h = LogHistogram("x")
        h.observe(a)
        h.observe(b)
        assert h.percentile(0) == edge(lo)
        assert h.percentile(50) == edge(lo)
        assert h.percentile(50.0001) == edge(hi)
        assert h.percentile(100) == edge(hi)


class TestCountersAndRegistry:
    def test_counter_monotone(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("active")
        g.set(3)
        g.set(7)
        assert g.value == 7
        assert g.updates == 2

    def test_registry_creates_on_first_touch(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert registry.counter("a").value == 1
        assert "a" in registry
        assert len(registry) == 1

    def test_registry_rejects_kind_collision(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="counter"):
            registry.histogram("x")

    def test_timing_metrics_excluded_from_deterministic_view(self):
        registry = MetricsRegistry()
        registry.counter("work").inc()
        registry.histogram("wall_ms", timing=True).observe(1.25)
        full = registry.to_dict()
        deterministic = registry.to_dict(include_timing=False)
        assert set(full) == {"work", "wall_ms"}
        assert set(deterministic) == {"work"}

    def test_render_lines_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        lines = registry.render_lines()
        assert lines[0].startswith("a") and lines[1].startswith("b")


class TestTraceRecorder:
    def test_monotonic_seq_and_counts(self):
        recorder = TraceRecorder()
        recorder.record("open", format=1)
        recorder.record("solve", task_id=0)
        recorder.record("solve", task_id=1)
        assert [r["seq"] for r in recorder.records] == [0, 1, 2]
        assert recorder.counts() == {"open": 1, "solve": 2}

    def test_write_through_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(path)
        recorder.record("open", format=1)
        recorder.record("solve", task_id=3, timing={"wall_s": 0.25})
        recorder.close()
        assert read_trace(path) == recorder.records

    def test_torn_final_record_tolerated(self, tmp_path):
        """A crash mid-record leaves a readable prefix, like the WAL."""
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(path)
        recorder.record("open", format=1)
        recorder.record("solve", task_id=0)
        recorder.close()
        with open(path, "ab") as fh:
            fh.write(b'deadbeef {"type": "torn"')  # no newline, bad CRC
        assert read_trace(path) == recorder.records

    def test_mid_file_damage_raises_typed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(path)
        for i in range(3):
            recorder.record("solve", task_id=i)
        recorder.close()
        lines = path.read_bytes().split(b"\n")
        lines[1] = b"00000000 {corrupted}"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ConfigurationError, match="line 2"):
            read_trace(path)

    def test_missing_file_raises_typed(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_trace(tmp_path / "nope.jsonl")

    def test_mask_timing_strips_only_timing(self):
        record = {"type": "solve", "seq": 0, "timing": {"wall_s": 1.0},
                  "task_id": 4}
        masked = mask_timing(record)
        assert masked == {"type": "solve", "seq": 0, "task_id": 4}
        assert "timing" in record  # shallow copy, original intact

    def test_masked_bytes_equal_modulo_timing(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record("solve", task_id=1, timing={"wall_s": 0.1})
        b.record("solve", task_id=1, timing={"wall_s": 99.9})
        assert masked_trace_bytes(a.records) == masked_trace_bytes(b.records)


class TestPhaseProfiler:
    def test_span_attributes_ops_without_incrementing(self):
        """The zero-overhead contract at its smallest scale: a span
        measures the counter delta its body caused and nothing else."""
        counters = OpCounters()
        profiler = PhaseProfiler()
        profiler.bind_counters(counters)
        with profiler.phase("solve"):
            counters.knn_queries += 3
        before = counters.snapshot()
        with profiler.phase("solve"):
            pass  # an empty span must leave the counters untouched
        assert repr(counters) == repr(before)
        stat = profiler.stats["solve"]
        assert stat.calls == 2
        assert stat.ops.knn_queries == 3

    def test_span_counters_override_bound_default(self):
        bound, local = OpCounters(), OpCounters()
        profiler = PhaseProfiler()
        profiler.bind_counters(bound)
        with profiler.phase("reconcile", counters=local):
            local.gain_evaluations += 2
        assert profiler.stats["reconcile"].ops.gain_evaluations == 2

    def test_emitted_record_isolates_wall_under_timing(self):
        recorder = TraceRecorder()
        profiler = PhaseProfiler(recorder=recorder, scope="shard-1")
        with profiler.phase("solve", task_id=7) as span:
            span["quality"] = 0.5
        (record,) = recorder.records
        assert record["type"] == "solve"
        assert record["task_id"] == 7
        assert record["quality"] == 0.5
        assert record["scope"] == "shard-1"
        assert set(record["timing"]) == {"wall_s"}
        assert mask_timing(record) == {k: v for k, v in record.items()
                                       if k != "timing"}

    def test_emit_false_accumulates_silently(self):
        recorder = TraceRecorder()
        profiler = PhaseProfiler(recorder=recorder)
        with profiler.phase("index-repair", emit=False):
            pass
        assert recorder.records == []
        assert profiler.stats["index-repair"].calls == 1

    def test_summary_separates_timing(self):
        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            pass
        phases, timing = profiler.summary()
        assert set(phases) == set(timing) == {"solve"}
        assert "wall_s" not in str(phases)  # deterministic half
        assert timing["solve"] >= 0.0

    def test_registry_feeds_per_phase_histograms(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(registry=registry, scope="shard-0")
        with profiler.phase("solve"):
            pass
        assert "shard-0/phase_ops/solve" in registry
        assert "shard-0/phase_wall_ms/solve" in registry
        assert registry.histogram("shard-0/phase_wall_ms/solve").timing


class _Probe:
    """Minimal layer standing in for a journal layer in wrap tests."""

    def __init__(self):
        self.calls = []

    def bind(self, server):
        self.calls.append("bind")

    def before_event(self, event, metrics):
        self.calls.append("before_event")

    def after_event(self, event, metrics):
        self.calls.append("after_event")

    def before_commit(self, session, worker_id, gslot, slot, cost):
        self.calls.append("before_commit")

    def before_finalize(self, session, metrics):
        self.calls.append("before_finalize")

    def on_epoch_end(self, metrics, now):
        self.calls.append("on_epoch_end")

    def on_run_complete(self, metrics):
        self.calls.append("on_run_complete")


class TestProfiledLayer:
    def test_hooks_delegate_and_accumulate_phase(self):
        inner = _Probe()
        profiler = PhaseProfiler()
        layer = ProfiledLayer(inner, profiler, phase="journal")
        layer.bind(None)
        layer.before_event(None, None)
        layer.after_event(None, None)
        layer.before_commit(None, 0, 0, 0, 0.0)
        layer.before_finalize(None, None)
        layer.on_epoch_end(None, 0.0)
        layer.on_run_complete(None)
        assert inner.calls == [
            "bind", "before_event", "after_event", "before_commit",
            "before_finalize", "on_epoch_end", "on_run_complete",
        ]
        # bind is direct (no cost to attribute); the six hooks span.
        assert profiler.stats["journal"].calls == 6

    def test_inner_stays_reachable(self):
        inner = _Probe()
        layer = ProfiledLayer(inner, PhaseProfiler())
        assert layer.inner is inner


class TestProfileDeprecationNote:
    """The --profile stderr pointer fires exactly once per process."""

    NOTE = "note: --profile prints raw cProfile output (deprecated)"

    def test_note_prints_once_across_invocations(self, capsys):
        from repro.obs import reset_profile_note, run_profiled

        reset_profile_note()
        assert run_profiled(lambda args: 0, None) == 0
        assert run_profiled(lambda args: 0, None) == 0
        captured = capsys.readouterr()
        assert captured.err.count(self.NOTE) == 1
        # The scrapeable cProfile rows still print for every run.
        assert captured.out.count("function calls") == 2

    def test_reset_rearms_the_note(self, capsys):
        from repro.obs import reset_profile_note, run_profiled

        reset_profile_note()
        run_profiled(lambda args: 0, None)
        reset_profile_note()
        run_profiled(lambda args: 0, None)
        assert capsys.readouterr().err.count(self.NOTE) == 2

    def test_handler_return_code_passes_through(self, capsys):
        from repro.obs import reset_profile_note, run_profiled

        reset_profile_note()
        assert run_profiled(lambda args: 3, None) == 3


class TestTelemetryEndToEnd:
    def test_stream_run_attaches_telemetry(self):
        outcome = build_runtime(STREAM_SPEC.replace(telemetry=True)).run()
        counts = outcome.telemetry.recorder.counts()
        for required in ("open", "event", "solve", "epoch", "finalize",
                         "phases", "run-complete", "trace-summary"):
            assert counts.get(required, 0) > 0, required
        assert "index-repair" in outcome.telemetry.profiler().stats
        report = outcome.telemetry.report()
        assert "phases" in report and "metrics:" in report

    def test_telemetry_off_by_default(self):
        assert build_runtime(STREAM_SPEC).run().telemetry is None

    def test_telemetered_run_is_byte_identical_to_bare(self):
        bare = build_runtime(STREAM_SPEC).run()
        telemetered = build_runtime(STREAM_SPEC.replace(telemetry=True)).run()
        assert telemetered.plan_signature == bare.plan_signature
        assert telemetered.metrics == bare.metrics
        assert repr(telemetered.counters) == repr(bare.counters)

    def test_plain_run_profiles_the_solve(self):
        outcome = build_runtime(PLAIN_SPEC.replace(telemetry=True)).run()
        assert outcome.telemetry.recorder.counts()["solve"] == (
            PLAIN_SPEC.workload.tasks
        )
        bare = build_runtime(PLAIN_SPEC).run()
        assert outcome.plan_signature == bare.plan_signature
        assert repr(outcome.counters) == repr(bare.counters)

    def test_sharded_scopes_stamp_records(self):
        spec = STREAM_SPEC.replace(shards=2, telemetry=True)
        outcome = build_runtime(spec).run()
        scopes = {r.get("scope") for r in outcome.telemetry.recorder.records
                  if r["type"] == "event"}
        assert scopes == {"shard-0", "shard-1"}

    def test_open_record_normalizes_paths(self, tmp_path):
        telemetry = Telemetry(
            spec={"journal": str(tmp_path / "j"), "trace_out": None,
                  "seed": 4},
        )
        (record,) = telemetry.recorder.records
        assert record["spec"] == {"journal": "<path>", "trace_out": None,
                                  "seed": 4}

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        horizon=st.integers(4, 10),
        shards=st.sampled_from([1, 2]),
    )
    def test_masked_traces_are_byte_identical_across_runs(
        self, seed, horizon, shards
    ):
        """Satellite 3: the trace determinism property.  Two runs of
        the same seeded spec differ only inside ``timing``."""
        spec = STREAM_SPEC.replace(
            shards=shards,
            telemetry=True,
            workload=dataclasses.replace(
                STREAM_SPEC.workload, seed=seed, horizon=horizon
            ),
        )
        first = build_runtime(spec).run()
        second = build_runtime(spec).run()
        assert masked_trace_bytes(first.telemetry.recorder.records) == (
            masked_trace_bytes(second.telemetry.recorder.records)
        )

    def test_trace_out_requires_telemetry(self):
        with pytest.raises(SpecError, match="trace_out"):
            STREAM_SPEC.replace(trace_out="t.jsonl").validate()

    def test_batch_telemetry_rejected_typed(self):
        with pytest.raises(SpecError):
            RunSpec(
                mode="batch",
                telemetry=True,
                workload=WorkloadSpec(tasks=4, slots=12, workers=100,
                                      rounds=2),
            ).validate()


class TestTraceReportOffline:
    def test_summarize_rebuilds_latency_and_starvation(self):
        records = [
            {"type": "finalize", "seq": 0, "latency": 2.0},
            {"type": "finalize", "seq": 1, "latency": None},
            {"type": "finalize", "seq": 2, "latency": 0.0},
            {"type": "epoch", "seq": 3, "queue_depth": 5},
        ]
        digest = summarize(records)
        assert digest["counts"] == {"epoch": 1, "finalize": 3}
        assert digest["starved"] == 1
        assert digest["latency"].count == 2
        assert digest["queue_depth"].percentile(50) == 8.0  # [4, 8) edge

    def test_render_from_real_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        spec = STREAM_SPEC.replace(telemetry=True, trace_out=str(path))
        build_runtime(spec).run()
        report = render_trace_report(path)
        assert "phase breakdown" in report
        assert "solve" in report
        assert "assignment latency" in report or "starved" in report
        assert "queue depth at epoch end" in report


class TestCLI:
    def test_simulate_telemetry_then_trace_report(self, tmp_path, capsys):
        """The acceptance pipeline: a telemetered simulate writes a
        trace that trace-report can fully render offline."""
        path = tmp_path / "trace.jsonl"
        code = main([
            "simulate", "--seed", "9", "--horizon", "10",
            "--task-slots", "8", "--initial-workers", "12",
            "--join-rate", "0.8", "--telemetry", "--trace-out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "index-repair" in out
        assert path.exists()

        assert main(["trace-report", str(path)]) == 0
        report = capsys.readouterr().out
        assert "phase breakdown" in report
        assert "records" in report

    def test_trace_out_implies_telemetry(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        PLAIN_SPEC.replace(
            workload=dataclasses.replace(PLAIN_SPEC.workload, tasks=4,
                                         workers=80)
        ).to_json(spec_path)
        path = tmp_path / "implied.jsonl"
        code = main(["run", "--spec", str(spec_path),
                     "--trace-out", str(path)])
        assert code == 0
        assert "telemetry report" in capsys.readouterr().out
        assert read_trace(path)[0]["type"] == "open"

    def test_trace_report_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "nope.jsonl" in capsys.readouterr().err

    def test_profile_flag_points_at_telemetry(self, capsys):
        """Satellite 1: the legacy --profile shim stays scrapable on
        stdout and advertises the replacement on stderr."""
        from repro.obs import reset_profile_note

        reset_profile_note()  # the note is once-per-process
        code = main(["solve-single", "--slots", "20", "--workers", "50",
                     "--profile"])
        assert code == 0
        captured = capsys.readouterr()
        assert "cumulative" in captured.out
        assert "deprecated" in captured.err
        assert "--telemetry" in captured.err
