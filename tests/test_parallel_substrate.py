"""Tests for the virtual-clock simulator and the real thread pool."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.parallel.simcluster import SimCluster, WorkItem
from repro.parallel.threadpool import MasterWorkerPool


class TestMakespan:
    def test_empty(self):
        assert SimCluster.makespan([], 4) == 0.0

    def test_single_core_is_sum(self):
        assert SimCluster.makespan([3.0, 2.0, 5.0], 1) == pytest.approx(10.0)

    def test_bounds(self):
        costs = [5.0, 3.0, 3.0, 2.0, 1.0]
        for cores in (2, 3, 4):
            ms = SimCluster.makespan(costs, cores)
            assert ms >= sum(costs) / cores - 1e-9  # lower bound
            assert ms >= max(costs)                 # critical item
            assert ms <= sum(costs) + 1e-9          # never worse than serial

    def test_perfect_split(self):
        assert SimCluster.makespan([2.0, 2.0, 2.0, 2.0], 2) == pytest.approx(4.0)

    def test_more_cores_never_slower(self):
        costs = [7.0, 4.0, 4.0, 3.0, 2.0, 1.0]
        times = [SimCluster.makespan(costs, c) for c in (1, 2, 3, 6)]
        assert times == sorted(times, reverse=True)


class TestSimCluster:
    def test_rejects_bad_cores(self):
        with pytest.raises(ConfigurationError):
            SimCluster(0)

    def test_round_accounting(self):
        cluster = SimCluster(2, per_message_cost=1.0)
        duration = cluster.run_round(
            [WorkItem("a", 4.0), WorkItem("b", 4.0)], messages=3
        )
        assert duration == pytest.approx(4.0 + 3.0)
        assert cluster.clock == pytest.approx(duration)
        assert cluster.busy_time == pytest.approx(8.0 + 3.0)
        assert cluster.rounds == 1
        assert cluster.messages == 3

    def test_utilization(self):
        cluster = SimCluster(2)
        cluster.run_round([WorkItem("a", 4.0), WorkItem("b", 4.0)])
        assert cluster.utilization == pytest.approx(1.0)
        idle = SimCluster(2)
        idle.run_round([WorkItem("a", 4.0)])
        assert idle.utilization == pytest.approx(0.5)

    def test_partitions(self):
        cluster = SimCluster(2)
        cluster.run_partitions(
            [[WorkItem("g1", 3.0), WorkItem("g1", 3.0)], [WorkItem("g2", 4.0)]]
        )
        # Partition totals are 6 and 4; on two cores the makespan is 6.
        assert cluster.clock == pytest.approx(6.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkItem("a", -1.0)

    def test_empty_utilization(self):
        assert SimCluster(2).utilization == 0.0


class TestMasterWorkerPool:
    def test_runs_all_jobs(self):
        pool = MasterWorkerPool(3)
        results = pool.run({i: (lambda i=i: i * i) for i in range(10)})
        assert results == {i: i * i for i in range(10)}

    def test_actually_uses_threads(self):
        pool = MasterWorkerPool(4)
        seen = set()
        lock = threading.Lock()

        def job():
            with lock:
                seen.add(threading.current_thread().name)
            return True

        pool.run({i: job for i in range(16)})
        assert all(name.startswith("tcsc-worker-") for name in seen)

    def test_propagates_exceptions(self):
        pool = MasterWorkerPool(2)

        def boom():
            raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            pool.run({1: boom})

    def test_empty_jobs(self):
        assert MasterWorkerPool(2).run({}) == {}

    def test_rejects_bad_thread_count(self):
        with pytest.raises(SchedulingError):
            MasterWorkerPool(0)
