"""Tests for the STCC extension (Appendix C)."""

from __future__ import annotations

import pytest

from repro.core.spatiotemporal import (
    LazySpatioTemporalGreedy,
    SpatioTemporalEvaluator,
    SpatioTemporalGreedy,
    score_assignment,
    spatiotemporal_opt,
)
from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.task import Task, TaskSet
from repro.multi.msqm import SumQualityGreedy
from repro.workloads.scenario import ScenarioConfig, build_scenario

BOX = BoundingBox.square(100.0)


def two_tasks(m=10):
    return TaskSet([Task(0, Point(10, 10), m), Task(1, Point(20, 20), m)])


@pytest.fixture(scope="module")
def stcc_scenario():
    return build_scenario(ScenarioConfig(num_tasks=4, num_slots=12, num_workers=80, seed=9))


class TestEvaluatorBasics:
    def test_initial_quality_zero(self):
        ev = SpatioTemporalEvaluator(two_tasks(), BOX, k=2)
        assert ev.sum_quality == 0.0
        assert ev.min_quality == 0.0
        assert ev.p(0, 1) == 0.0

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            SpatioTemporalEvaluator(two_tasks(), BOX, wt=0.5, ws=0.3)

    def test_tasks_must_align(self):
        tasks = TaskSet([Task(0, Point(0, 0), 10), Task(1, Point(1, 1), 12)])
        with pytest.raises(ConfigurationError):
            SpatioTemporalEvaluator(tasks, BOX)

    def test_empty_task_set(self):
        with pytest.raises(ConfigurationError):
            SpatioTemporalEvaluator(TaskSet(), BOX)

    def test_double_execute_rejected(self):
        ev = SpatioTemporalEvaluator(two_tasks(), BOX)
        ev.execute(0, 3)
        with pytest.raises(ConfigurationError):
            ev.execute(0, 3)


class TestEvaluatorSemantics:
    def test_spatial_neighbor_raises_other_tasks_p(self):
        """Executing task 0 at slot j lifts task 1's p at slot j via
        spatial interpolation (ws > 0)."""
        ev = SpatioTemporalEvaluator(two_tasks(), BOX, wt=0.7, ws=0.3)
        before = ev.p(1, 5)
        ev.execute(0, 5)
        after = ev.p(1, 5)
        assert after > before

    def test_wt_one_disables_spatial_coupling(self):
        ev = SpatioTemporalEvaluator(two_tasks(), BOX, wt=1.0, ws=0.0)
        ev.execute(0, 5)
        assert ev.p(1, 5) == 0.0
        assert ev.quality(1) == 0.0

    def test_temporal_rho_matches_eq3(self):
        ev = SpatioTemporalEvaluator(two_tasks(100), BOX, k=2)
        ev.execute(0, 2)
        ev.execute(0, 4)
        assert ev.temporal_rho(0, 1) == pytest.approx(0.02)  # paper's example

    def test_spatial_rho_range(self):
        ev = SpatioTemporalEvaluator(two_tasks(), BOX, k=2)
        assert ev.spatial_rho(0, 1) == pytest.approx(1.0)  # no neighbours
        ev.execute(1, 1)
        rho = ev.spatial_rho(0, 1)
        assert 0.0 < rho < 1.0

    def test_incremental_matches_recompute(self, stcc_scenario):
        ev = SpatioTemporalEvaluator(stcc_scenario.tasks, stcc_scenario.bbox, k=3)
        ids = [t.task_id for t in stcc_scenario.tasks]
        moves = [(ids[0], 3), (ids[1], 3), (ids[0], 8), (ids[2], 5), (ids[3], 3), (ids[1], 9)]
        for task_id, slot in moves:
            ev.execute(task_id, slot)
        for task_id in ids:
            assert ev.quality(task_id) == pytest.approx(ev.recompute_quality(task_id))

    def test_gain_is_pure(self):
        ev = SpatioTemporalEvaluator(two_tasks(), BOX)
        ev.execute(0, 5)
        before = {(tid, j): ev.p(tid, j) for tid in (0, 1) for j in range(1, 11)}
        gain = ev.gain_if_executed(1, 5)
        after = {(tid, j): ev.p(tid, j) for tid in (0, 1) for j in range(1, 11)}
        assert gain > 0.0
        assert before == after  # rollback restored everything

    def test_gain_matches_commit(self):
        ev = SpatioTemporalEvaluator(two_tasks(), BOX)
        ev.execute(0, 2)
        gain = ev.gain_if_executed(1, 7)
        before = ev.sum_quality
        ev.execute(1, 7)
        assert ev.sum_quality - before == pytest.approx(gain)


class TestSolver:
    def test_budget_respected(self, stcc_scenario):
        budget = stcc_scenario.budget * len(stcc_scenario.tasks)
        result = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget,
        ).solve()
        assert result.spent <= budget + 1e-9

    def test_wt1_matches_temporal_msqm_quality(self, stcc_scenario):
        budget = stcc_scenario.budget * len(stcc_scenario.tasks)
        stcc = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget, wt=1.0, ws=0.0,
        ).solve()
        temporal = SumQualityGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), budget=budget
        ).solve()
        assert stcc.sum_quality == pytest.approx(temporal.sum_quality)

    def test_sapprox_beats_approx_under_combined_metric(self, stcc_scenario):
        """Fig. 11: SApprox >= Approx when both are scored with the
        spatiotemporal metric."""
        budget = stcc_scenario.budget * len(stcc_scenario.tasks)
        sapprox = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget, wt=0.7, ws=0.3,
        ).solve()
        approx = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget, wt=1.0, ws=0.0,
        ).solve()
        approx_scored = sum(
            score_assignment(
                stcc_scenario.tasks, stcc_scenario.bbox, approx.assignment,
                wt=0.7, ws=0.3,
            ).values()
        )
        assert sapprox.sum_quality >= approx_scored - 1e-9

    def test_deterministic(self, stcc_scenario):
        budget = stcc_scenario.budget * len(stcc_scenario.tasks)
        a = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget,
        ).solve()
        b = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget,
        ).solve()
        assert a.plan_signature() == b.plan_signature()


class TestOpt:
    def _tiny(self):
        return build_scenario(
            ScenarioConfig(num_tasks=2, num_slots=6, num_workers=40, seed=2)
        )

    def test_opt_at_least_greedy(self):
        scenario = self._tiny()
        budget = scenario.budget * 2
        greedy = SpatioTemporalGreedy(
            scenario.tasks, scenario.fresh_registry(), scenario.bbox, budget=budget
        ).solve()
        opt_quality, chosen = spatiotemporal_opt(
            scenario.tasks, scenario.fresh_registry(), scenario.bbox, budget=budget
        )
        assert opt_quality >= greedy.sum_quality - 1e-9
        assert chosen  # the budget affords something

    def test_opt_refuses_large_instances(self, stcc_scenario):
        with pytest.raises(ConfigurationError):
            spatiotemporal_opt(
                stcc_scenario.tasks,
                stcc_scenario.fresh_registry(),
                stcc_scenario.bbox,
                budget=10.0,
                max_pairs=4,
            )


class TestScoreAssignment:
    def test_scores_respect_reliabilities(self, stcc_scenario):
        budget = stcc_scenario.budget
        result = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget,
        ).solve()
        full = score_assignment(stcc_scenario.tasks, stcc_scenario.bbox, result.assignment)
        halved = score_assignment(
            stcc_scenario.tasks, stcc_scenario.bbox, result.assignment,
            reliabilities={r.worker_id: 0.5 for r in result.assignment},
        )
        assert sum(halved.values()) < sum(full.values())

    def test_scoring_own_assignment_reproduces_quality(self, stcc_scenario):
        budget = stcc_scenario.budget * len(stcc_scenario.tasks)
        result = SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget, wt=0.7, ws=0.3,
        ).solve()
        scored = score_assignment(
            stcc_scenario.tasks, stcc_scenario.bbox, result.assignment, wt=0.7, ws=0.3
        )
        assert sum(scored.values()) == pytest.approx(result.sum_quality)


class TestLazySolver:
    """SApprox* (CELF) must replicate the exhaustive SApprox exactly."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_plan_equals_exhaustive(self, seed):
        scenario = build_scenario(
            ScenarioConfig(num_tasks=6, num_slots=10, num_workers=100, seed=seed)
        )
        budget = scenario.budget * 6
        naive = SpatioTemporalGreedy(
            scenario.tasks, scenario.fresh_registry(), scenario.bbox, budget=budget
        ).solve()
        lazy = LazySpatioTemporalGreedy(
            scenario.tasks, scenario.fresh_registry(), scenario.bbox, budget=budget
        ).solve()
        assert lazy.plan_signature() == naive.plan_signature()
        assert lazy.sum_quality == pytest.approx(naive.sum_quality)
        assert lazy.spent == pytest.approx(naive.spent)

    def test_fewer_gain_evaluations(self, stcc_scenario):
        from repro.core.instrumentation import OpCounters

        budget = stcc_scenario.budget * len(stcc_scenario.tasks)
        naive_counters = OpCounters()
        SpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget, counters=naive_counters,
        ).solve()
        lazy_counters = OpCounters()
        LazySpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget, counters=lazy_counters,
        ).solve()
        assert lazy_counters.gain_evaluations < naive_counters.gain_evaluations

    def test_budget_respected(self, stcc_scenario):
        budget = stcc_scenario.budget
        result = LazySpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=budget,
        ).solve()
        assert result.spent <= budget + 1e-9

    def test_zero_budget(self, stcc_scenario):
        result = LazySpatioTemporalGreedy(
            stcc_scenario.tasks, stcc_scenario.fresh_registry(), stcc_scenario.bbox,
            budget=0.0,
        ).solve()
        assert len(result.assignment) == 0

    def test_with_reliabilities(self):
        scenario = build_scenario(
            ScenarioConfig(num_tasks=4, num_slots=10, num_workers=80, seed=6,
                           reliability_range=(0.5, 1.0))
        )
        budget = scenario.budget * 4
        naive = SpatioTemporalGreedy(
            scenario.tasks, scenario.fresh_registry(), scenario.bbox, budget=budget
        ).solve()
        lazy = LazySpatioTemporalGreedy(
            scenario.tasks, scenario.fresh_registry(), scenario.bbox, budget=budget
        ).solve()
        # With heterogeneous reliabilities gains may rise after a
        # conflict swap, so only quality parity is guaranteed.
        assert lazy.sum_quality >= 0.98 * naive.sum_quality
