"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["solve-single"])
        assert args.policy == "approx_star"
        assert args.slots == 100
        assert args.k == 3

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve-single", "--policy", "magic"])

    def test_multi_options(self):
        args = build_parser().parse_args(
            ["solve-multi", "--tasks", "5", "--objective", "min", "--cores", "4"]
        )
        assert (args.tasks, args.objective, args.cores) == (5, "min", 4)

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.index_mode == "incremental"
        assert args.task_rate == 0.15
        assert args.epoch == 5.0
        assert args.seed == 7

    def test_simulate_rejects_unknown_index_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--index-mode", "magic"])

    def test_backend_and_profile_flags(self):
        args = build_parser().parse_args(["solve-single", "--backend", "numpy"])
        assert args.backend == "numpy"
        assert args.profile is False
        args = build_parser().parse_args(["simulate", "--profile"])
        assert args.profile is True

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve-single", "--backend", "fortran"])

    def test_bench_perf_options(self):
        args = build_parser().parse_args(["bench-perf", "--smoke"])
        assert args.smoke is True
        assert args.results_dir is None

    def test_bench_shard_options(self):
        args = build_parser().parse_args(["bench-shard"])
        assert args.smoke is False
        assert args.backend == "python"
        assert args.profile is False
        args = build_parser().parse_args(
            ["bench-shard", "--smoke", "--backend", "numpy"]
        )
        assert (args.smoke, args.backend) == (True, "numpy")

    def test_simulate_shard_flags(self):
        args = build_parser().parse_args(["simulate"])
        assert args.shards == 1
        assert args.halo == "auto"
        args = build_parser().parse_args(
            ["simulate", "--shards", "4", "--halo", "12.5"]
        )
        assert args.shards == 4
        assert args.halo == 12.5

    def test_simulate_rejects_bad_halo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--halo", "magic"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--halo", "-3"])

    def test_simulate_rejects_bad_shard_count(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--shards", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--shards", "-2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--shards", "many"])


class TestCommands:
    def test_solve_single(self, capsys):
        code = main(["solve-single", "--slots", "30", "--workers", "120", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "quality" in out
        assert "assigned" in out

    def test_solve_single_random_policy(self, capsys):
        code = main(
            ["solve-single", "--slots", "30", "--workers", "120", "--policy", "random"]
        )
        assert code == 0
        assert "policy=random" in capsys.readouterr().out

    def test_solve_multi_sum(self, capsys):
        code = main(
            ["solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "qsum" in out

    def test_solve_multi_min_with_cores(self, capsys):
        code = main(
            [
                "solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120",
                "--objective", "min",
            ]
        )
        assert code == 0
        assert "qmin" in capsys.readouterr().out

    def test_solve_multi_parallel(self, capsys):
        code = main(
            ["solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120",
             "--cores", "2"]
        )
        assert code == 0
        assert "cores=2" in capsys.readouterr().out

    def test_cover(self, capsys):
        code = main(
            ["cover", "--slots", "30", "--workers", "120", "--target", "0.6"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reached" in out

    def test_zipfian_distribution(self, capsys):
        code = main(
            ["solve-single", "--slots", "30", "--workers", "120",
             "--distribution", "zipfian"]
        )
        assert code == 0

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "--seed", "7", "--horizon", "30", "--task-rate", "0.15",
             "--task-slots", "10", "--initial-workers", "15", "--join-rate", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "streaming report" in out
        assert "latency" in out
        assert "index_mode=incremental" in out

    def test_simulate_rebuild_mode(self, capsys):
        code = main(
            ["simulate", "--seed", "3", "--horizon", "20", "--task-slots", "8",
             "--initial-workers", "10", "--join-rate", "0.3",
             "--index-mode", "rebuild", "--burstiness", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "index_mode=rebuild" in out

    def test_numpy_backend_matches_python_output(self, capsys):
        main(["solve-single", "--slots", "30", "--workers", "120", "--seed", "1"])
        python_out = capsys.readouterr().out
        main(["solve-single", "--slots", "30", "--workers", "120", "--seed", "1",
              "--backend", "numpy"])
        numpy_out = capsys.readouterr().out
        assert python_out == numpy_out

    def test_profile_prints_hotspots(self, capsys):
        code = main(["solve-single", "--slots", "20", "--workers", "60", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cumulative" in out
        assert "function calls" in out

    def test_simulate_numpy_backend(self, capsys):
        code = main(
            ["simulate", "--seed", "3", "--horizon", "20", "--task-slots", "8",
             "--initial-workers", "10", "--join-rate", "0.3", "--backend", "numpy"]
        )
        assert code == 0
        assert "streaming report" in capsys.readouterr().out

    def test_bench_perf_smoke(self, tmp_path, capsys):
        code = main(["bench-perf", "--smoke", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "perf_suite.json").exists()
        # A custom results dir keeps everything inside it.
        assert (tmp_path / "BENCH_perf.json").exists()
        assert "lazy gain-eval ratio" in out

    def test_simulate_sharded(self, capsys):
        code = main(
            ["simulate", "--seed", "7", "--horizon", "30", "--task-slots", "10",
             "--initial-workers", "15", "--join-rate", "0.5", "--shards", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded streaming report" in out
        assert "shards=3" in out

    def test_bench_shard_smoke(self, tmp_path, capsys):
        code = main(["bench-shard", "--smoke", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "shard_suite.json").exists()
        assert (tmp_path / "BENCH_shard.json").exists()
        assert "plans identical=True" in out
