"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["solve-single"])
        assert args.policy == "approx_star"
        assert args.slots == 100
        assert args.k == 3

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve-single", "--policy", "magic"])

    def test_multi_options(self):
        args = build_parser().parse_args(
            ["solve-multi", "--tasks", "5", "--objective", "min", "--cores", "4"]
        )
        assert (args.tasks, args.objective, args.cores) == (5, "min", 4)


class TestCommands:
    def test_solve_single(self, capsys):
        code = main(["solve-single", "--slots", "30", "--workers", "120", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "quality" in out
        assert "assigned" in out

    def test_solve_single_random_policy(self, capsys):
        code = main(
            ["solve-single", "--slots", "30", "--workers", "120", "--policy", "random"]
        )
        assert code == 0
        assert "policy=random" in capsys.readouterr().out

    def test_solve_multi_sum(self, capsys):
        code = main(
            ["solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "qsum" in out

    def test_solve_multi_min_with_cores(self, capsys):
        code = main(
            [
                "solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120",
                "--objective", "min",
            ]
        )
        assert code == 0
        assert "qmin" in capsys.readouterr().out

    def test_solve_multi_parallel(self, capsys):
        code = main(
            ["solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120",
             "--cores", "2"]
        )
        assert code == 0
        assert "cores=2" in capsys.readouterr().out

    def test_cover(self, capsys):
        code = main(
            ["cover", "--slots", "30", "--workers", "120", "--target", "0.6"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reached" in out

    def test_zipfian_distribution(self, capsys):
        code = main(
            ["solve-single", "--slots", "30", "--workers", "120",
             "--distribution", "zipfian"]
        )
        assert code == 0
