"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main
from repro.runtime import RunSpec, WorkloadSpec


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["solve-single"])
        assert args.policy == "approx_star"
        assert args.slots == 100
        assert args.k == 3

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve-single", "--policy", "magic"])

    def test_multi_options(self):
        args = build_parser().parse_args(
            ["solve-multi", "--tasks", "5", "--objective", "min", "--cores", "4"]
        )
        assert (args.tasks, args.objective, args.cores) == (5, "min", 4)

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.index_mode == "incremental"
        assert args.task_rate == 0.15
        assert args.epoch == 5.0
        assert args.seed == 7

    def test_simulate_rejects_unknown_index_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--index-mode", "magic"])

    def test_backend_and_profile_flags(self):
        args = build_parser().parse_args(["solve-single", "--backend", "numpy"])
        assert args.backend == "numpy"
        assert args.profile is False
        args = build_parser().parse_args(["simulate", "--profile"])
        assert args.profile is True

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve-single", "--backend", "fortran"])

    def test_bench_perf_options(self):
        args = build_parser().parse_args(["bench-perf", "--smoke"])
        assert args.smoke is True
        assert args.results_dir is None

    def test_bench_shard_options(self):
        args = build_parser().parse_args(["bench-shard"])
        assert args.smoke is False
        assert args.backend == "python"
        assert args.profile is False
        args = build_parser().parse_args(
            ["bench-shard", "--smoke", "--backend", "numpy"]
        )
        assert (args.smoke, args.backend) == (True, "numpy")

    def test_simulate_shard_flags(self):
        args = build_parser().parse_args(["simulate"])
        assert args.shards == 1
        assert args.halo == "auto"
        args = build_parser().parse_args(
            ["simulate", "--shards", "4", "--halo", "12.5"]
        )
        assert args.shards == 4
        assert args.halo == 12.5

    def test_simulate_rejects_bad_halo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--halo", "magic"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--halo", "-3"])

    def test_simulate_rejects_bad_shard_count(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--shards", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--shards", "-2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--shards", "many"])

    def test_run_options(self):
        args = build_parser().parse_args(["run"])
        assert args.spec is None
        assert args.mode is None
        assert args.print_spec is False
        args = build_parser().parse_args(
            ["run", "--spec", "s.json", "--mode", "stream", "--shards", "2",
             "--backend", "numpy", "--print-spec"]
        )
        assert (args.spec, args.mode, args.shards, args.backend) == (
            "s.json", "stream", 2, "numpy"
        )
        assert args.print_spec

    def test_matrix_options(self):
        args = build_parser().parse_args(["matrix", "--smoke"])
        assert args.smoke is True
        assert args.results_dir is None


class TestCommands:
    def test_solve_single(self, capsys):
        code = main(["solve-single", "--slots", "30", "--workers", "120", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "quality" in out
        assert "assigned" in out

    def test_solve_single_random_policy(self, capsys):
        code = main(
            ["solve-single", "--slots", "30", "--workers", "120", "--policy", "random"]
        )
        assert code == 0
        assert "policy=random" in capsys.readouterr().out

    def test_solve_multi_sum(self, capsys):
        code = main(
            ["solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "qsum" in out

    def test_solve_multi_min_with_cores(self, capsys):
        code = main(
            [
                "solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120",
                "--objective", "min",
            ]
        )
        assert code == 0
        assert "qmin" in capsys.readouterr().out

    def test_solve_multi_parallel(self, capsys):
        code = main(
            ["solve-multi", "--tasks", "4", "--slots", "20", "--workers", "120",
             "--cores", "2"]
        )
        assert code == 0
        assert "cores=2" in capsys.readouterr().out

    def test_cover(self, capsys):
        code = main(
            ["cover", "--slots", "30", "--workers", "120", "--target", "0.6"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reached" in out

    def test_zipfian_distribution(self, capsys):
        code = main(
            ["solve-single", "--slots", "30", "--workers", "120",
             "--distribution", "zipfian"]
        )
        assert code == 0

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "--seed", "7", "--horizon", "30", "--task-rate", "0.15",
             "--task-slots", "10", "--initial-workers", "15", "--join-rate", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "streaming report" in out
        assert "latency" in out
        assert "index_mode=incremental" in out

    def test_simulate_rebuild_mode(self, capsys):
        code = main(
            ["simulate", "--seed", "3", "--horizon", "20", "--task-slots", "8",
             "--initial-workers", "10", "--join-rate", "0.3",
             "--index-mode", "rebuild", "--burstiness", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "index_mode=rebuild" in out

    def test_numpy_backend_matches_python_output(self, capsys):
        main(["solve-single", "--slots", "30", "--workers", "120", "--seed", "1"])
        python_out = capsys.readouterr().out
        main(["solve-single", "--slots", "30", "--workers", "120", "--seed", "1",
              "--backend", "numpy"])
        numpy_out = capsys.readouterr().out
        assert python_out == numpy_out

    def test_profile_prints_hotspots(self, capsys):
        code = main(["solve-single", "--slots", "20", "--workers", "60", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cumulative" in out
        assert "function calls" in out

    def test_simulate_numpy_backend(self, capsys):
        code = main(
            ["simulate", "--seed", "3", "--horizon", "20", "--task-slots", "8",
             "--initial-workers", "10", "--join-rate", "0.3", "--backend", "numpy"]
        )
        assert code == 0
        assert "streaming report" in capsys.readouterr().out

    def test_bench_perf_smoke(self, tmp_path, capsys):
        code = main(["bench-perf", "--smoke", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "perf_suite.json").exists()
        # A custom results dir keeps everything inside it.
        assert (tmp_path / "BENCH_perf.json").exists()
        assert "lazy gain-eval ratio" in out

    def test_simulate_sharded(self, capsys):
        code = main(
            ["simulate", "--seed", "7", "--horizon", "30", "--task-slots", "10",
             "--initial-workers", "15", "--join-rate", "0.5", "--shards", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded streaming report" in out
        assert "shards=3" in out

    def test_bench_shard_smoke(self, tmp_path, capsys):
        code = main(["bench-shard", "--smoke", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "shard_suite.json").exists()
        assert (tmp_path / "BENCH_shard.json").exists()
        assert "plans identical=True" in out


class TestRunCommand:
    """The spec-driven face of the composable runtime."""

    def test_default_spec_runs_plain(self, capsys):
        code = main(["run"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving report" in out
        assert "plan" in out

    def test_print_spec_emits_json(self, capsys):
        code = main(["run", "--print-spec", "--mode", "stream", "--shards", "3"])
        out = capsys.readouterr().out
        assert code == 0
        spec = json.loads(out)
        assert spec["mode"] == "stream"
        assert spec["shards"] == 3

    def test_spec_file_round_trips_through_the_cli(self, tmp_path, capsys):
        spec = RunSpec(
            mode="stream",
            shards=2,
            workload=WorkloadSpec(horizon=20, task_slots=8,
                                  initial_workers=12, join_rate=0.5, seed=5),
        )
        path = tmp_path / "spec.json"
        spec.to_json(path)
        code = main(["run", "--spec", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded streaming report" in out

    def test_flag_overrides_spec_file(self, tmp_path, capsys):
        RunSpec(mode="plain").to_json(tmp_path / "spec.json")
        code = main(["run", "--spec", str(tmp_path / "spec.json"),
                     "--mode", "stream", "--print-spec"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["mode"] == "stream"

    def test_invalid_combo_is_a_typed_cli_error(self, capsys):
        code = main(["run", "--mode", "plain", "--journal", "/tmp/nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "invalid spec" in err
        assert "mode='stream'" in err

    def test_unknown_spec_field_is_a_typed_cli_error(self, tmp_path, capsys):
        path = tmp_path / "typo.json"
        path.write_text('{"shard_count": 4}')
        code = main(["run", "--spec", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "shard_count" in err

    def test_matrix_smoke(self, tmp_path, capsys):
        code = main(["matrix", "--smoke", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "matrix_suite.json").exists()
        assert (tmp_path / "BENCH_matrix.json").exists()
        assert "byte-identical to the legacy path" in out
        payload = json.loads((tmp_path / "matrix_suite.json").read_text())
        valid = [c for c in payload["cells"] if c["valid"]]
        assert valid and all(
            c["plan_identical"] and c["counters_identical"] for c in valid
        )
        rejected = [c for c in payload["cells"] if not c["valid"]]
        assert rejected and all(c["error"] == "SpecError" for c in rejected)


class TestJournalCLI:
    """The durability surface: --journal / --crash-at / --resume."""

    SIM = ["simulate", "--seed", "9", "--horizon", "16", "--task-rate", "0.3",
           "--task-slots", "8", "--initial-workers", "14", "--join-rate", "0.8",
           "--mean-lifetime", "12", "--epoch", "3", "--budget-fraction", "0.6",
           "--max-active", "4", "--queue-depth", "8", "--k", "2"]

    def test_parser_accepts_journal_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--journal", "/tmp/j", "--snapshot-every", "2",
             "--crash-at", "5", "--resume"]
        )
        assert args.journal == "/tmp/j"
        assert args.snapshot_every == 2
        assert args.crash_at == 5
        assert args.resume

    def test_crash_flags_require_journal(self, capsys):
        assert main(["simulate", "--crash-at", "3"]) == 2
        assert main(["simulate", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_existing_journal_refused_without_resume(self, tmp_path, capsys):
        """Re-running without --resume must not wipe the only copy of
        an interrupted run's log and snapshots."""
        jdir = str(tmp_path / "j")
        assert main(self.SIM + ["--journal", jdir, "--crash-at", "5"]) == 0
        capsys.readouterr()
        assert main(self.SIM + ["--journal", jdir, "--crash-at", "5"]) == 2
        assert "--resume" in capsys.readouterr().err
        # The journal survived and still recovers.
        assert main(self.SIM + ["--journal", jdir, "--resume"]) == 0
        assert "streaming report" in capsys.readouterr().out

    @staticmethod
    def _report_block(out: str) -> str:
        lines = out.splitlines()
        start = next(i for i, l in enumerate(lines) if "streaming report" in l)
        return "\n".join(lines[start:])

    def test_crash_then_resume_matches_clean_run(self, tmp_path, capsys):
        assert main(self.SIM) == 0
        clean = self._report_block(capsys.readouterr().out)

        jdir = str(tmp_path / "j")
        assert main(self.SIM + ["--journal", jdir, "--crash-at", "10"]) == 0
        out = capsys.readouterr().out
        assert "crash injected" in out
        assert "--resume" in out

        assert main(self.SIM + ["--journal", jdir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "recovery: snapshot=" in out
        # Byte-identical operator report: the recovered run is exact.
        assert self._report_block(out) == clean

    def test_sharded_crash_then_resume_matches_clean_run(self, tmp_path, capsys):
        sim = self.SIM + ["--shards", "2"]
        assert main(sim) == 0
        clean = self._report_block(capsys.readouterr().out)

        jdir = str(tmp_path / "js")
        assert main(sim + ["--journal", jdir, "--crash-at", "20"]) == 0
        assert "crash injected" in capsys.readouterr().out

        # Shardedness is read off the journal root: --shards is not
        # needed (nor consulted) on resume.
        assert main(self.SIM + ["--journal", jdir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "recovery shard 0" in out
        assert self._report_block(out) == clean

    def test_resume_missing_journal_is_guided(self, tmp_path, capsys):
        assert main(self.SIM + ["--journal", str(tmp_path / "nope"), "--resume"]) == 2
        assert "no journal found" in capsys.readouterr().err

    def test_double_fault_crash_during_resume_then_final_resume(self, tmp_path, capsys):
        """--crash-at stays armed on --resume: crash, recover, crash
        again mid-recovery, recover again — still byte-identical."""
        assert main(self.SIM) == 0
        clean = self._report_block(capsys.readouterr().out)
        jdir = str(tmp_path / "dbl")
        assert main(self.SIM + ["--journal", jdir, "--crash-at", "20"]) == 0
        capsys.readouterr()
        assert main(self.SIM + ["--journal", jdir, "--resume", "--crash-at", "40"]) == 0
        assert "crash injected" in capsys.readouterr().out
        assert main(self.SIM + ["--journal", jdir, "--resume"]) == 0
        assert self._report_block(capsys.readouterr().out) == clean

    def test_journaled_run_without_crash_matches_clean(self, tmp_path, capsys):
        assert main(self.SIM) == 0
        clean = self._report_block(capsys.readouterr().out)
        assert main(self.SIM + ["--journal", str(tmp_path / "nc")]) == 0
        assert self._report_block(capsys.readouterr().out) == clean

    def test_bench_journal_smoke(self, tmp_path, capsys):
        code = main(["bench-journal", "--smoke", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "journal_suite.json").exists()
        assert (tmp_path / "BENCH_journal.json").exists()
        assert "identical" in out


class TestElasticCLI:
    """The elasticity surface: --elastic / --migrate-at / --hotspot-drift."""

    SIM = ["simulate", "--seed", "9", "--horizon", "16", "--task-rate", "0.4",
           "--task-slots", "8", "--initial-workers", "14", "--join-rate", "0.8",
           "--mean-lifetime", "12", "--epoch", "3", "--budget-fraction", "0.6",
           "--max-active", "4", "--queue-depth", "8", "--k", "2",
           "--shards", "2"]

    def test_parser_accepts_elastic_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--shards", "2", "--elastic", "--migrate-at", "3",
             "--hotspot-drift", "0.5"]
        )
        assert args.elastic
        assert args.migrate_at == 3
        assert args.hotspot_drift == 0.5

    def test_elastic_run_reports_placement(self, capsys):
        assert main(self.SIM + ["--elastic"]) == 0
        out = capsys.readouterr().out
        assert "elastic=auto" in out
        assert "executors=2->" in out

    def test_migrate_at_fires_one_migration(self, capsys):
        assert main(self.SIM + ["--migrate-at", "2"]) == 0
        out = capsys.readouterr().out
        assert "elastic=fixed migrate_at=2" in out
        assert "migrations=1" in out
        assert "migrate shard" in out

    def test_migrated_report_matches_static_report(self, capsys):
        """The operator-visible exactness claim: migrating changes the
        elastic lines of the report, never the computation above them."""

        def stream_block(text):
            lines = text.splitlines()
            start = next(
                i for i, line in enumerate(lines) if "streaming report" in line
            )
            end = next(
                i for i, line in enumerate(lines) if line.startswith("elastic ")
            )
            return "\n".join(lines[start:end])

        assert main(self.SIM + ["--elastic"]) == 0
        static = capsys.readouterr().out
        assert main(self.SIM + ["--migrate-at", "2"]) == 0
        migrated = capsys.readouterr().out
        assert stream_block(static) == stream_block(migrated)

    def test_elastic_requires_shards(self, capsys):
        assert main(["simulate", "--elastic"]) == 2
        assert "shards >= 2" in capsys.readouterr().err

    def test_migrate_at_past_trace_end_warns_and_exits_zero(self, capsys):
        """The --crash-at sibling: a boundary past the trace end warns
        (before and after the run) instead of failing."""
        assert main(self.SIM + ["--migrate-at", "999"]) == 0
        err = capsys.readouterr().err
        assert "at or beyond the trace's last epoch boundary" in err
        assert "never fired" in err

    def test_crash_at_past_trace_end_warns_and_exits_zero(self, tmp_path, capsys):
        jdir = str(tmp_path / "j")
        assert main(self.SIM + ["--journal", jdir, "--crash-at", "99999"]) == 0
        err = capsys.readouterr().err
        assert "at or beyond the trace's last event boundary" in err
        assert "complete without crashing" in err

    def test_hotspot_drift_changes_arrivals(self, capsys):
        assert main(self.SIM) == 0
        plain = capsys.readouterr().out
        assert main(self.SIM + ["--hotspot-drift", "1.0"]) == 0
        drifted = capsys.readouterr().out
        assert plain != drifted
        assert main(["simulate", "--hotspot-drift", "1.5"]) == 2
        assert "hotspot_drift" in capsys.readouterr().err

    def test_bench_elastic_smoke(self, tmp_path, capsys):
        code = main(["bench-elastic", "--smoke", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "elastic_suite.json").exists()
        assert (tmp_path / "BENCH_elastic.json").exists()
        payload = json.loads((tmp_path / "elastic_suite.json").read_text())
        sweep = payload["sweep"]["2"]
        assert sweep["identical"] == sweep["boundaries"]
        assert payload["off_identity"]["identical"]
        assert "identical" in out
