"""Tests for the engine substrate: registry, costs, field, interpolation."""

from __future__ import annotations

import pytest

from repro.engine.costs import DynamicCostProvider, SingleTaskCostTable
from repro.engine.field import SpatioTemporalField
from repro.engine.interpolation import idw_series, reconstruction_rmse
from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError, WorkerUnavailableError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.task import Task
from repro.model.worker import Worker, WorkerPool

BOX = BoundingBox.square(100.0)


def make_registry():
    """Three workers with hand-placed availability."""
    pool = WorkerPool(
        [
            Worker(1, {1: Point(10, 10), 2: Point(20, 20)}),
            Worker(2, {1: Point(30, 30), 2: Point(25, 25)}),
            Worker(3, {2: Point(90, 90)}),
        ]
    )
    return WorkerRegistry(pool, BOX)


class TestRegistry:
    def test_nearest_available(self):
        registry = make_registry()
        worker, dist = registry.nearest_available(Point(12, 12), 1)
        assert worker.worker_id == 1
        assert dist == pytest.approx(Point(12, 12).distance_to(Point(10, 10)))

    def test_rank_queries(self):
        registry = make_registry()
        second = registry.nearest_available(Point(12, 12), 1, rank=2)
        assert second[0].worker_id == 2
        assert registry.nearest_available(Point(12, 12), 1, rank=3) is None

    def test_consume_removes_from_index(self):
        registry = make_registry()
        registry.consume(1, 1)
        assert registry.is_consumed(1, 1)
        worker, _ = registry.nearest_available(Point(12, 12), 1)
        assert worker.worker_id == 2
        # Slot 2 is unaffected.
        assert registry.nearest_available(Point(20, 20), 2)[0].worker_id == 1

    def test_double_consume_raises(self):
        registry = make_registry()
        registry.consume(1, 1)
        with pytest.raises(WorkerUnavailableError):
            registry.consume(1, 1)

    def test_release_restores(self):
        registry = make_registry()
        registry.consume(1, 1)
        registry.release(1, 1)
        assert registry.nearest_available(Point(12, 12), 1)[0].worker_id == 1
        with pytest.raises(WorkerUnavailableError):
            registry.release(1, 1)

    def test_reset(self):
        registry = make_registry()
        registry.consume(1, 1)
        registry.consume(2, 1)
        registry.reset()
        assert registry.available_count(1) == 2

    def test_available_count(self):
        registry = make_registry()
        assert registry.available_count(1) == 2
        assert registry.available_count(2) == 3
        assert registry.available_count(99) == 0

    def test_k_nearest_available(self):
        registry = make_registry()
        hits = registry.k_nearest_available(Point(0, 0), 2, 5)
        assert [w.worker_id for w, _ in hits] == [1, 2, 3]

    def test_kdtree_backend_agrees_with_grid(self):
        pool = make_registry().pool
        grid = WorkerRegistry(pool, BOX, backend="grid")
        tree = WorkerRegistry(pool, BOX, backend="kdtree")
        for slot in (1, 2):
            for query in (Point(12, 12), Point(80, 80)):
                g = grid.nearest_available(query, slot)
                t = tree.nearest_available(query, slot)
                assert g[0].worker_id == t[0].worker_id
                assert g[1] == pytest.approx(t[1])
        # Consumption works identically.
        tree.consume(1, 1)
        assert tree.nearest_available(Point(12, 12), 1)[0].worker_id == 2
        tree.release(1, 1)
        assert tree.nearest_available(Point(12, 12), 1)[0].worker_id == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerRegistry(make_registry().pool, BOX, backend="quadtree")


class TestSingleTaskCostTable:
    def test_offers_are_nearest_workers(self):
        registry = make_registry()
        task = Task(0, Point(12, 12), 3)
        table = SingleTaskCostTable(task, registry)
        assert table.offer(1).worker_id == 1
        assert table.cost(3) is None  # no worker at slot 3
        assert table.reliability(3) == 1.0
        assert table.assignable_slots == [1, 2]
        assert table.min_cost == pytest.approx(min(table.cost(1), table.cost(2)))
        assert table.total_cost == pytest.approx(table.cost(1) + table.cost(2))

    def test_counters_track_lookups(self):
        from repro.core.instrumentation import OpCounters

        counters = OpCounters()
        SingleTaskCostTable(Task(0, Point(0, 0), 5), make_registry(), counters=counters)
        assert counters.worker_cost_lookups == 5


class TestDynamicCostProvider:
    def test_offer_updates_after_consumption(self):
        registry = make_registry()
        task = Task(0, Point(12, 12), 3)
        provider = DynamicCostProvider(task, registry)
        first = provider.offer(1)
        assert first.worker_id == 1
        registry.consume(1, 1)
        invalidated = provider.invalidate_worker(1, 1)
        assert invalidated == [1]
        second = provider.offer(1)
        assert second.worker_id == 2
        assert second.cost > first.cost

    def test_invalidation_ignores_other_workers(self):
        registry = make_registry()
        provider = DynamicCostProvider(Task(0, Point(12, 12), 3), registry)
        provider.offer(1)
        assert provider.invalidate_worker(2, 1) == []  # cached offer is worker 1

    def test_invalidation_outside_task_range(self):
        registry = make_registry()
        provider = DynamicCostProvider(Task(0, Point(12, 12), 3), registry)
        assert provider.invalidate_worker(1, 99) == []

    def test_invalidate_all(self):
        registry = make_registry()
        provider = DynamicCostProvider(Task(0, Point(12, 12), 3), registry)
        provider.offer(1)
        provider.invalidate_all()
        registry.consume(1, 1)
        assert provider.offer(1).worker_id == 2


class TestField:
    def test_deterministic(self):
        a = SpatioTemporalField(BOX, seed=1)
        b = SpatioTemporalField(BOX, seed=1)
        assert a.value(Point(5, 5), 3) == pytest.approx(b.value(Point(5, 5), 3))

    def test_series(self):
        field = SpatioTemporalField(BOX, seed=1)
        series = field.series(Point(5, 5), range(1, 6))
        assert len(series) == 5

    def test_values_bounded(self):
        field = SpatioTemporalField(BOX, num_plumes=3, amplitude=10.0, seed=2)
        for slot in (1, 50, 100):
            value = field.value(Point(50, 50), slot)
            assert 0.0 <= value <= 3 * 10.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpatioTemporalField(BOX, num_plumes=0)


class TestInterpolation:
    def test_probed_slots_exact(self):
        series = idw_series(5, {2: 10.0, 4: 20.0})
        assert series[1] == 10.0 and series[3] == 20.0

    def test_constant_signal_reconstructed_exactly(self):
        series = idw_series(9, {2: 7.0, 6: 7.0}, k=2)
        assert all(v == pytest.approx(7.0) for v in series)

    def test_no_probes_gives_zeros(self):
        assert idw_series(4, {}) == [0.0] * 4

    def test_closer_probe_dominates(self):
        series = idw_series(10, {1: 0.0, 10: 100.0}, k=2)
        assert series[1] < 50.0 < series[8]

    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            idw_series(5, {6: 1.0})
        with pytest.raises(ConfigurationError):
            idw_series(0, {})

    def test_rmse(self):
        assert reconstruction_rmse([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert reconstruction_rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx((12.5) ** 0.5)
        with pytest.raises(ConfigurationError):
            reconstruction_rmse([1.0], [1.0, 2.0])
        assert reconstruction_rmse([], []) == 0.0
