"""Smoke tests: every example script must run end to end.

These execute the real example files (so they can never rot), with
stdout captured; the slowest takes a few seconds.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script.name} produced suspiciously little output"


def test_examples_discovered():
    assert len(EXAMPLES) >= 4
