"""Tests for the dual problem: minimum-cost quality cover."""

from __future__ import annotations

import pytest

from repro.core.cover import MinCostCoverSolver
from repro.core.greedy import IndexedSingleTaskGreedy
from repro.core.quality import max_quality, task_quality
from repro.errors import ConfigurationError, InfeasibleAssignmentError
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.engine.costs import SingleTaskCostTable


@pytest.fixture(scope="module")
def instance():
    scenario = build_scenario(
        ScenarioConfig(num_tasks=1, num_slots=40, num_workers=250, seed=17)
    )
    costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
    return scenario, costs


class TestValidation:
    def test_negative_target(self, instance):
        scenario, costs = instance
        with pytest.raises(ConfigurationError):
            MinCostCoverSolver(scenario.single_task, costs, target_quality=-1.0)

    def test_target_above_maximum(self, instance):
        scenario, costs = instance
        upper = max_quality(scenario.single_task.num_slots)
        with pytest.raises(ConfigurationError):
            MinCostCoverSolver(scenario.single_task, costs, target_quality=upper + 1)


class TestCover:
    def test_zero_target_costs_nothing(self, instance):
        scenario, costs = instance
        result = MinCostCoverSolver(scenario.single_task, costs, target_quality=0.0).solve()
        assert result.cost == 0.0
        assert len(result.assignment) == 0
        assert result.reached

    def test_reaches_target(self, instance):
        scenario, costs = instance
        target = 0.8 * max_quality(scenario.single_task.num_slots)
        result = MinCostCoverSolver(
            scenario.single_task, costs, target_quality=target
        ).solve()
        assert result.reached
        assert result.quality >= target
        # Quality claimed matches the reference metric.
        executed = {r.slot: costs.reliability(r.slot) for r in result.assignment}
        assert result.quality == pytest.approx(
            task_quality(scenario.single_task.num_slots, 3, executed)
        )

    def test_indexed_matches_enumerated(self, instance):
        scenario, costs = instance
        target = 0.7 * max_quality(scenario.single_task.num_slots)
        indexed = MinCostCoverSolver(
            scenario.single_task, costs, target_quality=target, use_index=True
        ).solve()
        plain = MinCostCoverSolver(
            scenario.single_task, costs, target_quality=target, use_index=False
        ).solve()
        assert indexed.assignment.plan_signature() == plain.assignment.plan_signature()
        assert indexed.cost == pytest.approx(plain.cost)

    def test_cost_monotone_in_target(self, instance):
        scenario, costs = instance
        upper = max_quality(scenario.single_task.num_slots)
        costs_out = []
        for fraction in (0.3, 0.6, 0.9):
            result = MinCostCoverSolver(
                scenario.single_task, costs, target_quality=fraction * upper
            ).solve()
            costs_out.append(result.cost)
        assert costs_out == sorted(costs_out)

    def test_duality_with_primal(self, instance):
        """Covering to the primal's achieved quality costs no more than
        the primal spent (the greedy streams coincide)."""
        scenario, costs = instance
        primal = IndexedSingleTaskGreedy(
            scenario.single_task, costs, budget=scenario.budget
        ).solve()
        dual = MinCostCoverSolver(
            scenario.single_task, costs, target_quality=primal.quality
        ).solve()
        assert dual.cost <= primal.spent + 1e-9
        assert dual.quality >= primal.quality - 1e-12

    def test_unreachable_target_raises(self):
        """Sparse workers leave coverage gaps; near-max targets fail."""
        scenario = build_scenario(
            ScenarioConfig(num_tasks=1, num_slots=40, num_workers=3, seed=17)
        )
        costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
        upper = max_quality(scenario.single_task.num_slots)
        with pytest.raises(InfeasibleAssignmentError):
            MinCostCoverSolver(
                scenario.single_task, costs, target_quality=0.99 * upper
            ).solve()
