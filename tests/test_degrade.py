"""Graceful degradation (``repro.degrade``): certificates, ladder, chaos.

Four layers of contract.  Math level: :func:`gain_envelope_bound` is a
true fractional-knapsack upper bound on any feasible residual gain.
Solver level: degraded solves (top-c, floor) report a certificate the
measured quality ratio against the exact solve always clears, and the
heterogeneous-reliability fallback rule keeps uncertifiable instances
exact.  Policy level: the hysteresis controller walks the mode ladder
one level per epoch, never flaps on a boundary queue depth, and pinned
(static-mode) controllers never move.  Harness level: fault injections
are deterministic trace transforms (flash crowds, region outages) or
op-count budgets (slowdowns) — never wall clock — and the CLI surface
(``--approx`` / ``--inject`` / ``bench-degrade``) composes them.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import build_parser, main
from repro.core.greedy import SingleTaskGreedy
from repro.degrade import (
    ChaosLayer,
    DegradationController,
    DegradationLayer,
    DegradeDirective,
    InjectionSpec,
    LEVEL_NAMES,
    apply_injections,
    gain_envelope_bound,
    load_injections,
)
from repro.errors import ConfigurationError, SpecError
from repro.obs import MetricsRegistry
from repro.runtime import RunSpec, WorkloadSpec, build_runtime
from repro.stream.events import TaskArrival, WorkerJoin, WorkerLeave
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events


# ----------------------------------------------------------------------
# The gain-envelope bound
# ----------------------------------------------------------------------
class TestGainEnvelopeBound:
    def test_zero_capacity_bounds_nothing(self):
        assert gain_envelope_bound([(5.0, 1.0)], 0.0) == 0.0
        assert gain_envelope_bound([(5.0, 1.0)], -1.0) == 0.0

    def test_empty_envelope_is_zero(self):
        assert gain_envelope_bound([], 10.0) == 0.0

    def test_everything_affordable_sums_positive_gains(self):
        items = [(3.0, 1.0), (2.0, 1.0), (-4.0, 0.5), (0.0, 0.1)]
        assert gain_envelope_bound(items, 10.0) == pytest.approx(5.0)

    def test_boundary_item_taken_fractionally(self):
        # densities: 10/5 = 2.0, then 6/5 = 1.2 with 2 budget left.
        items = [(10.0, 5.0), (6.0, 5.0)]
        assert gain_envelope_bound(items, 7.0) == pytest.approx(10.0 + 6.0 * 2 / 5)

    def test_zero_cost_positive_gain_taken_in_full(self):
        assert gain_envelope_bound([(4.0, 0.0), (1.0, 2.0)], 1.0) == (
            pytest.approx(4.0 + 0.5)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 50.0, allow_nan=False),
                st.floats(0.01, 20.0, allow_nan=False),
            ),
            max_size=10,
        ),
        st.floats(0.0, 60.0, allow_nan=False),
    )
    def test_dominates_greedy_integral_selection(self, items, capacity):
        """The LP relaxation upper-bounds one concrete feasible plan:
        the density-greedy integral selection."""
        bound = gain_envelope_bound(items, capacity)
        remaining = capacity
        integral = 0.0
        for gain, cost in sorted(items, key=lambda it: -(it[0] / it[1])):
            if gain > 0.0 and cost <= remaining:
                integral += gain
                remaining -= cost
        assert bound + 1e-9 >= integral


# ----------------------------------------------------------------------
# Certified degraded solves
# ----------------------------------------------------------------------
class _ScaledReliabilityCosts:
    """Wrap a cost table with non-unit reliabilities (fallback probe)."""

    static_costs = True

    def __init__(self, inner, scale=0.9):
        self._inner = inner
        self._scale = scale

    def cost(self, slot):
        return self._inner.cost(slot)

    def offer(self, slot):
        return self._inner.offer(slot)

    def reliability(self, slot):
        return self._inner.reliability(slot) * self._scale


class TestCertifiedSolver:
    def test_exact_solve_certificate_is_one(self, small_scenario, small_costs):
        result = SingleTaskGreedy(
            small_scenario.single_task, small_costs,
            budget=small_scenario.budget,
        ).solve()
        assert result.certificate == 1.0

    def test_top_c_measured_ratio_clears_certificate(self, small_scenario):
        scenario = small_scenario
        from repro.engine.costs import SingleTaskCostTable

        exact = SingleTaskGreedy(
            scenario.single_task,
            SingleTaskCostTable(scenario.single_task, scenario.fresh_registry()),
            budget=scenario.budget,
        ).solve()
        for c in (2, 4, 8):
            degraded = SingleTaskGreedy(
                scenario.single_task,
                SingleTaskCostTable(
                    scenario.single_task, scenario.fresh_registry()
                ),
                budget=scenario.budget,
                top_c=c,
            ).solve()
            assert 0.0 <= degraded.certificate <= 1.0
            measured = degraded.quality / exact.quality
            assert measured + 1e-9 >= degraded.certificate
            # Bounded search only ever commits allowed slots.
            assert len(degraded.executed_slots) <= c

    def test_floor_measured_ratio_clears_certificate(self, small_scenario):
        scenario = small_scenario
        from repro.engine.costs import SingleTaskCostTable

        exact = SingleTaskGreedy(
            scenario.single_task,
            SingleTaskCostTable(scenario.single_task, scenario.fresh_registry()),
            budget=scenario.budget,
        ).solve()
        degraded = SingleTaskGreedy(
            scenario.single_task,
            SingleTaskCostTable(scenario.single_task, scenario.fresh_registry()),
            budget=scenario.budget,
            gain_floor=0.5,
        ).solve()
        assert degraded.quality <= exact.quality + 1e-9
        assert degraded.quality / exact.quality + 1e-9 >= degraded.certificate

    def test_heterogeneous_reliability_falls_back_to_exact(
        self, small_scenario
    ):
        """The DESIGN §5 fallback rule: non-unit reliabilities make the
        envelope premises fail, so a degraded request solves exactly —
        same plan, certificate 1.0."""
        scenario = small_scenario
        from repro.engine.costs import SingleTaskCostTable

        def costs():
            return _ScaledReliabilityCosts(
                SingleTaskCostTable(
                    scenario.single_task, scenario.fresh_registry()
                )
            )

        exact = SingleTaskGreedy(
            scenario.single_task, costs(), budget=scenario.budget
        ).solve()
        requested = SingleTaskGreedy(
            scenario.single_task, costs(), budget=scenario.budget,
            top_c=2, gain_floor=0.5,
        )
        assert requested.degraded is False
        result = requested.solve()
        assert result.certificate == 1.0
        assert result.assignment.plan_signature() == (
            exact.assignment.plan_signature()
        )

    def test_knob_validation(self, small_scenario, small_costs):
        with pytest.raises(ConfigurationError):
            SingleTaskGreedy(
                small_scenario.single_task, small_costs,
                budget=small_scenario.budget, top_c=0,
            )
        with pytest.raises(ConfigurationError):
            SingleTaskGreedy(
                small_scenario.single_task, small_costs,
                budget=small_scenario.budget, gain_floor=1.5,
            )


# ----------------------------------------------------------------------
# The mode ladder
# ----------------------------------------------------------------------
def _controller(**overrides):
    fields = dict(top_c=3, floor=0.2, queue_high=4, queue_low=1)
    fields.update(overrides)
    return DegradationController(**fields)


class TestDegradationController:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            _controller(top_c=0)
        with pytest.raises(ConfigurationError):
            _controller(floor=0.0)
        with pytest.raises(ConfigurationError):
            _controller(floor=1.5)
        with pytest.raises(ConfigurationError):
            _controller(queue_high=2, queue_low=2)
        with pytest.raises(ConfigurationError):
            _controller(queue_low=-1)

    def test_escalates_one_level_per_epoch_then_saturates(self):
        c = _controller()
        levels = []
        for _ in range(5):
            c.observe(queue_depth=9)
            levels.append(c.level)
        assert levels == [1, 2, 3, 3, 3]
        assert c.shedding
        assert [t[:3] for t in c.transitions] == [
            (1, 0, 1), (2, 1, 2), (3, 2, 3),
        ]

    def test_hysteresis_band_holds_the_level(self):
        c = _controller()
        c.observe(queue_depth=4)          # escalate to 1
        for depth in (2, 3, 2):           # between low and high: hold
            assert c.observe(queue_depth=depth) is None
        assert c.level == 1
        assert c.observe(queue_depth=1) == (1, 0)   # calm: de-escalate
        assert c.level == 0
        assert c.observe(queue_depth=0) is None     # floor of the ladder

    def test_slo_escalates_even_with_short_queue(self):
        c = _controller(slo_p99=16.0)
        assert c.observe(queue_depth=0, p99=32.0) == (0, 1)
        # Calm now needs *both* signals back under their thresholds.
        assert c.observe(queue_depth=0, p99=32.0) == (1, 2)
        assert c.observe(queue_depth=1, p99=8.0) == (2, 1)

    def test_directive_per_level(self):
        c = _controller()
        assert c.directive() == DegradeDirective(level=0)
        c.observe(queue_depth=9)
        assert c.directive() == DegradeDirective(level=1, top_c=3)
        c.observe(queue_depth=9)
        assert c.directive() == DegradeDirective(
            level=2, top_c=3, floor=0.2, shed=False
        )
        c.observe(queue_depth=9)
        directive = c.directive()
        assert directive.shed and directive.level == 3
        assert directive.name == LEVEL_NAMES[3] == "shed"

    def test_fixed_controller_never_moves(self):
        c = DegradationController.fixed(top_c=3)
        assert c.directive() == DegradeDirective(level=1, top_c=3)
        for _ in range(4):
            assert c.observe(queue_depth=99) is None
        assert c.directive() == DegradeDirective(level=1, top_c=3)
        assert not c.shedding
        assert c.transitions == []

    def test_fixed_floor_and_both(self):
        floor_only = DegradationController.fixed(floor=0.5)
        assert floor_only.directive() == DegradeDirective(level=2, floor=0.5)
        both = DegradationController.fixed(top_c=2, floor=0.5)
        assert both.directive() == DegradeDirective(
            level=2, top_c=2, floor=0.5
        )


class _FakeServer:
    def __init__(self, pending=0):
        self._pending = [object()] * pending
        self.degradation = None


class _FakeRecorder:
    def __init__(self):
        self.records = []

    def record(self, record_type, **fields):
        self.records.append((record_type, fields))


class _FakeMetrics:
    epochs = 5


class TestDegradationLayer:
    def test_bind_hands_server_the_controller(self):
        controller = _controller()
        server = _FakeServer()
        DegradationLayer(controller).bind(server)
        assert server.degradation is controller

    def test_epoch_end_feeds_queue_depth_and_records_transitions(self):
        controller = _controller(queue_high=3)
        server = _FakeServer(pending=5)
        recorder = _FakeRecorder()
        registry = MetricsRegistry()
        layer = DegradationLayer(controller, recorder=recorder,
                                 registry=registry)
        layer.bind(server)
        layer.on_epoch_end(_FakeMetrics(), now=10.0)
        assert controller.level == 1
        assert registry.gauge("degrade/level").value == 1
        assert registry.counter("degrade/transitions").value == 1
        ((record_type, fields),) = recorder.records
        assert record_type == "degrade"
        assert fields["from_level"] == "exact"
        assert fields["to_level"] == "top_c"
        assert fields["queue_depth"] == 5

    def test_p99_read_from_latency_histogram(self):
        controller = _controller(queue_high=50, slo_p99=4.0)
        server = _FakeServer(pending=0)
        registry = MetricsRegistry()
        registry.histogram("latency_slots").observe(60.0)
        layer = DegradationLayer(controller, registry=registry)
        layer.bind(server)
        layer.on_epoch_end(_FakeMetrics(), now=0.0)
        assert controller.level == 1       # SLO breach, not queue depth
        assert controller.transitions[0][4] == 64.0  # the exact p99


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def _scenario(**overrides):
    fields = dict(
        horizon=16, task_rate=0.4, task_slots=8, initial_workers=12,
        worker_join_rate=0.8, mean_worker_lifetime=10.0, seed=9,
    )
    fields.update(overrides)
    return build_stream_events(StreamScenarioConfig(**fields))


class TestInjectionSpecs:
    def test_kind_is_validated(self):
        with pytest.raises(ConfigurationError):
            InjectionSpec(kind="meteor")

    @pytest.mark.parametrize(
        "fields",
        [
            dict(kind="flash_crowd", at=-1.0, tasks=4),
            dict(kind="flash_crowd", tasks=0),
            dict(kind="region_outage", radius=0.0),
            dict(kind="slowdown", op_budget=0),
            dict(kind="slowdown", op_budget=10, shard=-1),
        ],
    )
    def test_field_validation(self, fields):
        with pytest.raises(ConfigurationError):
            InjectionSpec(**fields)

    def test_from_dict_rejects_unknowns_and_missing_kind(self):
        with pytest.raises(ConfigurationError, match="severity"):
            InjectionSpec.from_dict(
                {"kind": "flash_crowd", "tasks": 2, "severity": 9}
            )
        with pytest.raises(ConfigurationError, match="kind"):
            InjectionSpec.from_dict({"tasks": 2})
        with pytest.raises(ConfigurationError):
            InjectionSpec.from_dict(["not", "an", "object"])

    def test_load_injections_round_trip(self, tmp_path):
        path = tmp_path / "inject.json"
        path.write_text(json.dumps({
            "injections": [
                {"kind": "flash_crowd", "at": 6.0, "tasks": 8},
                {"kind": "slowdown", "op_budget": 500, "shard": 1},
            ]
        }))
        specs = load_injections(path)
        assert [s.kind for s in specs] == ["flash_crowd", "slowdown"]
        assert specs[1].shard == 1

    def test_load_injections_guides_on_bad_files(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_injections(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_injections(bad)
        wrong_shape = tmp_path / "shape.json"
        wrong_shape.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="injections"):
            load_injections(wrong_shape)


class TestApplyInjections:
    def test_flash_crowd_is_deterministic_and_additive(self):
        scenario = _scenario()
        injections = (InjectionSpec(kind="flash_crowd", at=6.0, tasks=5),)
        once = apply_injections(scenario, injections)
        twice = apply_injections(scenario, injections)
        assert repr(once.events) == repr(twice.events)
        arrivals = [e for e in once.events
                    if isinstance(e, TaskArrival) and e.time == 6.0]
        base_arrivals = [e for e in scenario.events
                         if isinstance(e, TaskArrival) and e.time == 6.0]
        assert len(arrivals) - len(base_arrivals) == 5
        # Fresh task ids: no collision with the base trace.
        base_ids = {e.task.task_id for e in scenario.events
                    if isinstance(e, TaskArrival)}
        new_ids = {e.task.task_id for e in once.events
                   if isinstance(e, TaskArrival)} - base_ids
        assert len(new_ids) == 5

    def test_flash_crowd_leaves_input_scenario_untouched(self):
        scenario = _scenario()
        before = repr(scenario.events)
        apply_injections(
            scenario, (InjectionSpec(kind="flash_crowd", at=3.0, tasks=3),)
        )
        assert repr(scenario.events) == before

    def test_region_outage_moves_leaves_without_duplicating(self):
        scenario = _scenario()
        at = 8.0
        outage = InjectionSpec(
            kind="region_outage", at=at, x=0.0, y=0.0, radius=1e9
        )
        hit = apply_injections(scenario, (outage,))
        # Moved, never duplicated: one leave per worker either way.
        assert len(hit.events) == len(scenario.events)

        def leaves(events):
            return {e.worker_id: e.time for e in events
                    if isinstance(e, WorkerLeave)}

        before, after = leaves(scenario.events), leaves(hit.events)
        assert set(before) == set(after)
        # Every worker present at the outage with a later scheduled
        # departure now leaves at the outage instant (radius covers
        # the whole region); everyone else is untouched.
        joins = {e.worker.worker_id: e.time for e in scenario.events
                 if isinstance(e, WorkerJoin)}
        moved = 0
        for worker_id, leave_time in before.items():
            if joins[worker_id] <= at < leave_time:
                assert after[worker_id] == at
                moved += 1
            else:
                assert after[worker_id] == leave_time
        assert moved > 0

    def test_slowdown_is_not_a_trace_transform(self):
        scenario = _scenario()
        unchanged = apply_injections(
            scenario, (InjectionSpec(kind="slowdown", op_budget=100),)
        )
        assert repr(unchanged.events) == repr(scenario.events)

    def test_chaos_layer_caps_the_epoch_op_budget(self):
        class Server:
            op_epoch_budget = None

        server = Server()
        ChaosLayer(op_budget=250).bind(server)
        assert server.op_epoch_budget == 250


# ----------------------------------------------------------------------
# Spec-driven runtimes
# ----------------------------------------------------------------------
STREAM_SPEC = RunSpec(
    mode="stream",
    workload=WorkloadSpec(
        horizon=12, task_rate=0.4, task_slots=10, initial_workers=16,
        join_rate=0.8, mean_lifetime=12.0, seed=9,
    ),
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8,
)


class TestApproxRuntime:
    def test_approx_off_reports_no_certificates(self):
        outcome = build_runtime(STREAM_SPEC).run()
        assert outcome.certificates is None

    def test_stream_top_c_certifies_every_completed_task(self):
        spec = STREAM_SPEC.replace(approx="top_c", approx_top_c=3)
        outcome = build_runtime(spec).run()
        assert outcome.certificates
        assert all(0.0 <= c <= 1.0 for c in outcome.certificates.values())

    def test_plain_measured_ratio_clears_certificate_per_task(self):
        base = RunSpec(
            mode="plain",
            workload=WorkloadSpec(tasks=5, slots=32, workers=150, seed=13),
            budget_fraction=0.3,
        )
        exact = build_runtime(base).run()
        degraded = build_runtime(
            base.replace(approx="top_c", approx_top_c=3)
        ).run()
        exact_q = dict(exact.qualities)
        compared = 0
        for task_id, certificate in degraded.certificates.items():
            if exact_q.get(task_id, 0.0) <= 0.0:
                continue
            measured = degraded.qualities[task_id] / exact_q[task_id]
            assert measured + 1e-9 >= certificate
            compared += 1
        assert compared > 0

    def test_auto_ladder_escalates_under_injected_overload(self):
        from repro.runtime.factory import StreamRuntime

        spec = STREAM_SPEC.replace(
            workload=STREAM_SPEC.workload,
            approx="auto", approx_top_c=3, approx_floor=0.2,
            telemetry=True, degrade_queue_high=2, degrade_queue_low=1,
            max_queue_depth=6,
        ).validate()
        injections = (
            InjectionSpec(kind="flash_crowd", at=3.0, tasks=10),
            InjectionSpec(kind="slowdown", op_budget=80),
        )
        trace = apply_injections(StreamRuntime(spec).scenario(), injections)
        runtime = StreamRuntime(spec, scenario=trace, chaos=injections)
        runtime.run()
        controller = runtime.server.degradation
        assert controller is not None
        assert controller.transitions            # the ladder moved
        assert max(t[2] for t in controller.transitions) >= 1

    def test_journal_x_slowdown_is_a_typed_rejection(self, tmp_path):
        from repro.runtime.factory import StreamRuntime

        spec = STREAM_SPEC.replace(journal=str(tmp_path / "j")).validate()
        runtime = StreamRuntime(
            spec, chaos=(InjectionSpec(kind="slowdown", op_budget=50),)
        )
        with pytest.raises(SpecError, match="replay"):
            runtime.server


# ----------------------------------------------------------------------
# The CLI surface
# ----------------------------------------------------------------------
SIM = ["simulate", "--seed", "9", "--horizon", "12", "--task-rate", "0.4",
       "--task-slots", "10", "--initial-workers", "16", "--join-rate", "0.8",
       "--mean-lifetime", "12", "--epoch", "3", "--budget-fraction", "0.6",
       "--max-active", "4", "--queue-depth", "8", "--k", "2"]


class TestDegradeCLI:
    def test_parser_accepts_degrade_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--approx", "auto", "--top-c", "3",
             "--floor", "0.2", "--slo-p99", "16", "--inject", "f.json"]
        )
        assert args.approx == "auto"
        assert args.top_c == 3
        assert args.floor == 0.2
        assert args.slo_p99 == 16.0
        assert args.inject == "f.json"

    def test_simulate_with_static_approx(self, capsys):
        assert main(SIM + ["--approx", "top_c", "--top-c", "3"]) == 0
        assert "streaming report" in capsys.readouterr().out

    def test_inject_end_to_end(self, tmp_path, capsys):
        inject = tmp_path / "inject.json"
        inject.write_text(json.dumps({"injections": [
            {"kind": "flash_crowd", "at": 3.0, "tasks": 6},
            {"kind": "slowdown", "op_budget": 200},
        ]}))
        assert main(SIM + ["--inject", str(inject)]) == 0
        out = capsys.readouterr().out
        assert "inject: 2 injections" in out
        assert "streaming report" in out

    def test_inject_is_incompatible_with_resume(self, tmp_path, capsys):
        inject = tmp_path / "inject.json"
        inject.write_text(json.dumps({"injections": []}))
        code = main(SIM + ["--inject", str(inject), "--resume",
                           "--journal", str(tmp_path / "j")])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_bad_inject_file_is_a_clean_cli_error(self, tmp_path, capsys):
        assert main(SIM + ["--inject", str(tmp_path / "nope.json")]) == 2
        assert "nope.json" in capsys.readouterr().err

    def test_unsupported_pairing_is_a_clean_cli_error(self, capsys):
        code = main(SIM + ["--approx", "top_c", "--top-c", "3",
                           "--shards", "2"])
        assert code == 2
        assert "approx" in capsys.readouterr().err

    def test_crash_at_past_end_warns_and_completes(self, tmp_path, capsys):
        """Satellite 2: a --crash-at boundary past the trace's last
        event cannot fire; say so instead of silently never crashing."""
        code = main(SIM + ["--journal", str(tmp_path / "j"),
                           "--crash-at", "100000"])
        captured = capsys.readouterr()
        assert code == 0
        assert "at or beyond" in captured.err
        assert "will complete without crashing" in captured.err
        assert "streaming report" in captured.out

    def test_crash_at_within_trace_does_not_warn(self, tmp_path, capsys):
        code = main(SIM + ["--journal", str(tmp_path / "j"),
                           "--crash-at", "5"])
        captured = capsys.readouterr()
        assert code == 0
        assert "at or beyond" not in captured.err
        assert "crash injected" in captured.out

    def test_bench_degrade_smoke(self, tmp_path, capsys):
        code = main(["bench-degrade", "--smoke",
                     "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "degrade_suite.json").exists()
        assert (tmp_path / "BENCH_degrade.json").exists()
        assert "certificate" in out


class TestDegradeSuitePayload:
    def test_smoke_payload_clears_every_gate(self):
        from repro.bench.degradesuite import check_payload, run_suite

        payload = run_suite(smoke=True)
        assert check_payload(payload) == []
        arms = {cell["arm"] for cell in payload["cells"]}
        assert {"identity", "certificate", "overload", "rejection"} <= arms
