"""Tests for the ASCII plotting helpers and the report collector."""

from __future__ import annotations

import json

import pytest

from repro.bench.ascii_plot import bar_chart, line_chart
from repro.bench.collect import (
    COLLECTORS,
    collect,
    collect_degrade,
    collect_journal,
    collect_obs,
    collect_shard,
    collect_stream,
    main,
    reset_unrecognized_warnings,
    unrecognized_artifacts,
)
from repro.errors import ConfigurationError


class TestLineChart:
    def test_single_series(self):
        chart = line_chart([1, 2, 3], {"time": [1.0, 2.0, 4.0]}, title="demo")
        assert "demo" in chart
        assert "o=time" in chart
        assert chart.count("o") >= 3

    def test_two_series_markers(self):
        chart = line_chart([1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]})
        assert "o=a" in chart and "x=b" in chart

    def test_log_scale(self):
        chart = line_chart([1, 2, 3], {"t": [1.0, 100.0, 10000.0]}, log=True)
        assert "(log scale)" in chart

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            line_chart([1], {"t": [0.0]}, log=True)

    def test_flat_series(self):
        chart = line_chart([1, 2], {"t": [5.0, 5.0]})
        grid_only = chart.split("\n|", 1)[1].rsplit("+", 1)[0]
        assert grid_only.count("o") == 2  # both points at the mid row

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {})
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"a": [1.0, 2.0], "b": [1.0]})
        with pytest.raises(ConfigurationError):
            line_chart([], {"a": []})

    def test_x_labels_rendered(self):
        chart = line_chart(["u", "g", "z"], {"t": [1.0, 2.0, 3.0]})
        assert "u" in chart and "g" in chart and "z" in chart


class TestBarChart:
    def test_basic(self):
        chart = bar_chart(["grid", "kdtree"], [0.3, 0.6], title="backends")
        assert "backends" in chart
        lines = chart.splitlines()
        assert lines[1].count("#") < lines[2].count("#")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [0.0])


class TestCollect:
    def test_collects_and_orders(self, tmp_path):
        (tmp_path / "fig11a.txt").write_text("# fig11a: late\nrow\n")
        (tmp_path / "fig6a.txt").write_text("# fig6a: early\nrow\n")
        (tmp_path / "abl1.txt").write_text("# abl1: ablation\nrow\n")
        report = collect(tmp_path)
        assert report.index("fig6a") < report.index("fig11a") < report.index("abl1")
        assert "3 figure series" in report

    def test_main_writes_report(self, tmp_path, capsys):
        (tmp_path / "fig6a.txt").write_text("# fig6a: early\nrow\n")
        code = main([str(tmp_path)])
        assert code == 0
        assert (tmp_path.parent / "REPORT.md").exists() or (
            tmp_path / ".." / "REPORT.md"
        ).resolve().exists()

    def test_main_missing_dir(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 1

    def test_collect_stream_merges_json_series(self, tmp_path):
        (tmp_path / "stream1.json").write_text('{"events_per_sec": 10.0}\n')
        (tmp_path / "stream2.json").write_text('{"events_per_sec": 20.0}\n')
        merged = collect_stream(tmp_path)
        assert set(merged["series"]) == {"stream1", "stream2"}
        assert merged["series"]["stream1"]["events_per_sec"] == 10.0

    def test_collect_stream_none_without_series(self, tmp_path):
        assert collect_stream(tmp_path) is None

    def test_main_writes_bench_stream_json(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig6a.txt").write_text("# fig6a: early\nrow\n")
        (results / "stream1.json").write_text('{"events_per_sec": 10.0}\n')
        assert main([str(results)]) == 0
        payload = json.loads((tmp_path / "BENCH_stream.json").read_text())
        assert "stream1" in payload["series"]

    def test_collect_shard_merges_json_series(self, tmp_path):
        (tmp_path / "shard_suite.json").write_text('{"suite": "shardsuite"}\n')
        merged = collect_shard(tmp_path)
        assert set(merged["series"]) == {"shard_suite"}
        assert "bench-shard" in merged["generated_by"]

    def test_collect_journal_merges_json_series(self, tmp_path):
        (tmp_path / "journal_suite.json").write_text('{"suite": "journalsuite"}\n')
        merged = collect_journal(tmp_path)
        assert set(merged["series"]) == {"journal_suite"}
        assert "bench-journal" in merged["generated_by"]

    def test_collect_obs_merges_json_series(self, tmp_path):
        (tmp_path / "obs_suite.json").write_text('{"suite": "obssuite"}\n')
        merged = collect_obs(tmp_path)
        assert set(merged["series"]) == {"obs_suite"}
        assert "bench-obs" in merged["generated_by"]

    def test_collect_degrade_merges_json_series(self, tmp_path):
        (tmp_path / "degrade_suite.json").write_text(
            '{"suite": "degradesuite"}\n'
        )
        merged = collect_degrade(tmp_path)
        assert set(merged["series"]) == {"degrade_suite"}
        assert "bench-degrade" in merged["generated_by"]

    def test_every_registered_artifact_has_a_collector(self):
        assert set(COLLECTORS) == {
            "BENCH_stream.json", "BENCH_perf.json", "BENCH_shard.json",
            "BENCH_journal.json", "BENCH_matrix.json", "BENCH_obs.json",
            "BENCH_degrade.json", "BENCH_elastic.json",
            "BENCH_regress.json", "BENCH_par.json",
        }
        for pattern, collector in COLLECTORS.values():
            assert pattern.endswith("*.json")
            assert callable(collector)

    def test_unrecognized_artifacts_detected(self, tmp_path):
        (tmp_path / "BENCH_stream.json").write_text("{}\n")
        (tmp_path / "BENCH_mystery.json").write_text("{}\n")
        assert unrecognized_artifacts(tmp_path) == ["BENCH_mystery.json"]

    def test_main_warns_on_stale_registered_artifact(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig6a.txt").write_text("# fig6a: early\nrow\n")
        # A registered artifact whose source series vanished: it must
        # be flagged as stale, not silently skipped.
        (tmp_path / "BENCH_stream.json").write_text('{"series": {}}\n')
        assert main([str(results)]) == 0
        err = capsys.readouterr().err
        assert "BENCH_stream.json" in err
        assert "stale" in err

    def test_main_warns_on_unrecognized_artifact(self, tmp_path, capsys):
        reset_unrecognized_warnings()
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig6a.txt").write_text("# fig6a: early\nrow\n")
        (tmp_path / "BENCH_mystery.json").write_text("{}\n")
        assert main([str(results)]) == 0
        err = capsys.readouterr().err
        assert "BENCH_mystery.json" in err
        assert "no registered collector" in err
        reset_unrecognized_warnings()

    def test_unrecognized_warning_fires_once_per_process(self, tmp_path, capsys):
        """Suites re-enter main() after every run; the same stale
        artifact must not warn again and again."""
        reset_unrecognized_warnings()
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig6a.txt").write_text("# fig6a: early\nrow\n")
        (tmp_path / "BENCH_mystery.json").write_text("{}\n")
        assert main([str(results)]) == 0
        assert main([str(results)]) == 0
        err = capsys.readouterr().err
        assert err.count("BENCH_mystery.json") == 1
        # Re-arming restores the warning (a fresh process would warn).
        reset_unrecognized_warnings()
        assert main([str(results)]) == 0
        assert "BENCH_mystery.json" in capsys.readouterr().err
        reset_unrecognized_warnings()

    def test_report_ingests_bench_artifacts(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig6a.txt").write_text("# fig6a: early\nrow\n")
        (tmp_path / "BENCH_shard.json").write_text(
            json.dumps({"generated_by": "python -m repro bench-shard",
                        "series": {"shard_suite": {}}})
        )
        report = collect(results)
        assert "Machine-readable artifacts" in report
        assert "BENCH_shard.json" in report
        assert "bench-shard" in report

    def test_report_flags_unrecognized_artifacts(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (tmp_path / "BENCH_mystery.json").write_text("{}\n")
        report = collect(results)
        assert "BENCH_mystery.json" in report
        assert "unrecognized" in report
