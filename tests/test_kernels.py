"""Backend parity, lazy-search identity, and kernel regression tests.

The performance layer's contract is strict: the NumPy kernels and the
CELF lazy argmax must be *invisible* in every output — identical plans,
probabilities equal to float round-off, and identical operation counts
for equivalent logical work.  These tests enforce that contract on
randomized instances.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.greedy import IndexedSingleTaskGreedy, SingleTaskGreedy
from repro.core.instrumentation import OpCounters
from repro.core.kernels import QualityKernel, get_kernel, phi_array
from repro.core.quality import entropy_term, task_quality
from repro.engine.costs import SingleTaskCostTable
from repro.errors import ConfigurationError
from repro.workloads.scenario import ScenarioConfig, build_scenario


# ----------------------------------------------------------------------
# entropy_term round-off clamp (regression)
# ----------------------------------------------------------------------
def test_entropy_term_clamps_float_roundoff():
    # Vectorized accumulation can land an epsilon outside [0, 1];
    # those values are round-off, not caller errors.
    assert entropy_term(-1e-16) == 0.0
    assert entropy_term(0.0) == 0.0
    assert entropy_term(1.0) == 0.0
    assert entropy_term(1.0 + 1e-16) == 0.0
    assert entropy_term(0.5) == pytest.approx(0.5)


def test_entropy_term_still_rejects_real_violations():
    with pytest.raises(ConfigurationError):
        entropy_term(-1e-9)
    with pytest.raises(ConfigurationError):
        entropy_term(1.0 + 1e-9)


def test_phi_array_matches_scalar_and_clamps():
    p = np.array([0.0, 1e-300, 0.25, 1.0 / 3.0, 1.0, -1e-16, 1.0 + 1e-16])
    out = phi_array(p)
    for value, expected_p in zip(out, p):
        assert value == pytest.approx(entropy_term(float(expected_p)), abs=1e-15)
    with pytest.raises(ConfigurationError):
        phi_array(np.array([0.5, -1e-9]))


# ----------------------------------------------------------------------
# Phi table bitwise consistency
# ----------------------------------------------------------------------
def test_phi_table_bitwise_equals_scalar_oracle():
    # The plan-identity contract: unit-reliability table lookups are
    # bitwise identical to the scalar entropy_term, so exact ties
    # stay exact across backends.
    kernel = QualityKernel(40, 3)
    grid = np.arange(3 * 40 + 1, dtype=np.float64)
    lookup = kernel.phi_of_totals(grid, unit=True)
    for t, value in enumerate(lookup):
        assert float(value) == entropy_term(t / kernel.denom)
    assert kernel.phi_executed(1.0) == entropy_term(1.0 / 40)
    # The vectorized non-unit path agrees to float round-off.
    direct = kernel.phi_of_totals(grid, unit=False)
    np.testing.assert_allclose(direct, lookup, rtol=0, atol=1e-15)


def test_get_kernel_is_shared_per_shape():
    assert get_kernel(50, 3) is get_kernel(50, 3)
    assert get_kernel(50, 3) is not get_kernel(50, 4)


# ----------------------------------------------------------------------
# Evaluator backend parity (property test)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("unit_reliability", [True, False])
def test_backend_parity_randomized(unit_reliability):
    rng = random.Random(42 if unit_reliability else 43)
    for _ in range(15):
        m = rng.randint(5, 50)
        k = rng.randint(1, 5)
        c_py, c_np = OpCounters(), OpCounters()
        ev_py = TemporalQualityEvaluator(m, k, counters=c_py)
        ev_np = TemporalQualityEvaluator(m, k, counters=c_np, backend="numpy")
        for slot in rng.sample(range(1, m + 1), rng.randint(1, m - 1)):
            lam = 1.0 if unit_reliability else round(rng.uniform(0.1, 1.0), 3)
            free = [s for s in range(1, m + 1) if not ev_py.is_executed(s)]
            for cand in rng.sample(free, min(3, len(free))):
                g_local = ev_py.gain_if_executed(cand, lam)
                assert ev_np.gain_if_executed(cand, lam) == pytest.approx(
                    g_local, abs=1e-12
                )
                g_full = ev_py.gain_full_rescan(cand, lam)
                assert ev_np.gain_full_rescan(cand, lam) == pytest.approx(
                    g_full, abs=1e-12
                )
                # Locality: both strategies agree on the same backend.
                assert g_full == pytest.approx(g_local, abs=1e-12)
            ev_py.execute(slot, lam)
            ev_np.execute(slot, lam)
            for j in range(1, m + 1):
                assert ev_np.p(j) == pytest.approx(ev_py.p(j), abs=1e-12)
            assert ev_np.quality == pytest.approx(ev_py.quality, abs=1e-10)
        # Counter parity: identical logical work, identical counts
        # (asserted before the oracle calls below, which count too).
        assert (c_np.gain_evaluations, c_np.slot_evaluations, c_np.knn_queries) == (
            c_py.gain_evaluations,
            c_py.slot_evaluations,
            c_py.knn_queries,
        )
        # The incremental quality matches the from-scratch oracle.
        executed = {s: ev_py._reliability[s] for s in ev_py.executed_slots}
        assert ev_np.quality == pytest.approx(task_quality(m, k, executed), abs=1e-9)
        assert ev_np.recompute_quality() == pytest.approx(ev_np.quality, abs=1e-9)


def test_backend_parity_execute_change_sets():
    rng = random.Random(7)
    ev_py = TemporalQualityEvaluator(30, 3)
    ev_np = TemporalQualityEvaluator(30, 3, backend="numpy")
    for slot in rng.sample(range(1, 31), 12):
        ch_py = ev_py.execute(slot)
        ch_np = ev_np.execute(slot)
        assert sorted(c.slot for c in ch_py) == sorted(c.slot for c in ch_np)
        by_slot = {c.slot: c for c in ch_np}
        for c in ch_py:
            assert by_slot[c.slot].new_p == pytest.approx(c.new_p, abs=1e-12)


def test_numpy_backend_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        TemporalQualityEvaluator(10, 3, backend="fortran")


# ----------------------------------------------------------------------
# Gains are non-increasing under unit reliability (the CELF premise)
# ----------------------------------------------------------------------
def test_unit_reliability_gains_are_non_increasing():
    rng = random.Random(5)
    for _ in range(5):
        m = rng.randint(10, 40)
        k = rng.randint(1, 4)
        ev = TemporalQualityEvaluator(m, k)
        watched = rng.sample(range(1, m + 1), 5)
        last = {s: math.inf for s in watched}
        for slot in rng.sample(range(1, m + 1), m // 2):
            for s in watched:
                if ev.is_executed(s) or s == slot:
                    continue
                gain = ev.gain_if_executed(s)
                assert gain <= last[s] + 1e-12, (m, k, s)
                last[s] = gain
            if not ev.is_executed(slot):
                ev.execute(slot)


# ----------------------------------------------------------------------
# Plan identity across every solver variant
# ----------------------------------------------------------------------
def _solver_variants(task, costs, budget):
    return {
        "python-enum-full": lambda c: SingleTaskGreedy(
            task, costs, budget=budget, strategy="full", counters=c
        ),
        "python-enum-local": lambda c: SingleTaskGreedy(
            task, costs, budget=budget, strategy="local", counters=c
        ),
        "python-lazy": lambda c: SingleTaskGreedy(
            task, costs, budget=budget, strategy="local", search="lazy", counters=c
        ),
        "numpy-enum-local": lambda c: SingleTaskGreedy(
            task, costs, budget=budget, strategy="local", backend="numpy", counters=c
        ),
        "numpy-lazy": lambda c: SingleTaskGreedy(
            task, costs, budget=budget, strategy="local", search="lazy",
            backend="numpy", counters=c,
        ),
        "indexed-python": lambda c: IndexedSingleTaskGreedy(
            task, costs, budget=budget, counters=c
        ),
        "indexed-numpy": lambda c: IndexedSingleTaskGreedy(
            task, costs, budget=budget, backend="numpy", counters=c
        ),
    }


@pytest.mark.parametrize("seed,reliability_range", [
    (3, (1.0, 1.0)),
    (9, (1.0, 1.0)),
    (17, (1.0, 1.0)),
    (3, (0.3, 1.0)),
    (9, (0.5, 1.0)),
])
def test_all_variants_identical_plans(seed, reliability_range):
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=1,
            num_slots=40,
            num_workers=150,
            seed=seed,
            reliability_range=reliability_range,
        )
    )
    task = scenario.single_task
    costs = SingleTaskCostTable(task, scenario.fresh_registry())
    signatures = {}
    qualities = {}
    for name, factory in _solver_variants(task, costs, scenario.budget).items():
        result = factory(OpCounters()).solve()
        signatures[name] = result.assignment.plan_signature()
        qualities[name] = result.quality
    reference = signatures["python-enum-full"]
    assert all(sig == reference for sig in signatures.values()), signatures
    for quality in qualities.values():
        assert quality == pytest.approx(qualities["python-enum-full"], abs=1e-9)


def test_lazy_search_counter_parity_and_savings():
    scenario = build_scenario(
        ScenarioConfig(num_tasks=1, num_slots=60, num_workers=200, seed=13)
    )
    task = scenario.single_task
    costs = SingleTaskCostTable(task, scenario.fresh_registry())
    c_enum, c_lazy = OpCounters(), OpCounters()
    enum = SingleTaskGreedy(
        task, costs, budget=scenario.budget, strategy="local", counters=c_enum
    ).solve()
    lazy = SingleTaskGreedy(
        task, costs, budget=scenario.budget, strategy="local", search="lazy",
        counters=c_lazy,
    ).solve()
    assert enum.assignment.plan_signature() == lazy.assignment.plan_signature()
    assert c_lazy.gain_evaluations <= 0.30 * c_enum.gain_evaluations
    assert c_lazy.iterations == c_enum.iterations
    # candidates_total keeps the enumerated meaning (every unexecuted
    # assignable slot per round), so counts compare across modes and
    # the pruning counters account for every skipped evaluation.
    assert c_lazy.candidates_total == c_enum.candidates_total
    assert c_lazy.candidates_pruned == (
        c_lazy.candidates_total - c_lazy.gain_evaluations
    )


class _UniformCosts:
    """Every slot costs the same: maximally tie-prone geometry."""

    static_costs = True  # offers never change; lazy search may cache

    def __init__(self, m, cost=1.0):
        self.m = m
        self._cost = cost

    def cost(self, slot):
        return self._cost

    def reliability(self, slot):
        return 1.0

    def offer(self, slot):
        from repro.engine.costs import SlotOffer

        return SlotOffer(slot, self._cost, 1.0)


@pytest.mark.parametrize("m", range(8, 24))
def test_backend_plan_identity_under_exact_ties(m):
    # Regression: with uniform costs, mirror-symmetric candidates have
    # mathematically equal heuristics.  The backends must keep those
    # ties bitwise exact (sequential gain accumulation + scalar-built
    # phi table), or the smallest-index tie-break flips per backend.
    from repro.model.task import Task
    from repro.geo.point import Point

    task = Task(task_id=0, loc=Point(0.0, 0.0), num_slots=m, start_slot=1)
    costs = _UniformCosts(m)
    plans = {}
    for backend in ("python", "numpy"):
        for search in ("enumerate", "lazy"):
            result = SingleTaskGreedy(
                task, costs, budget=3.0, strategy="local", search=search,
                backend=backend, counters=OpCounters(),
            ).solve()
            plans[(backend, search)] = result.assignment.plan_signature()
    reference = plans[("python", "enumerate")]
    assert all(sig == reference for sig in plans.values()), plans


def test_lazy_falls_back_on_dynamic_cost_provider():
    # A provider that does not declare static_costs (e.g. the
    # streaming layer's dynamic offers) must not be served by the
    # caching lazy heap; the solver enumerates instead.
    scenario = build_scenario(
        ScenarioConfig(num_tasks=1, num_slots=30, num_workers=120, seed=13)
    )
    task = scenario.single_task
    costs = SingleTaskCostTable(task, scenario.fresh_registry())

    class _Undeclared:
        def __init__(self, inner):
            self._inner = inner

        def cost(self, slot):
            return self._inner.cost(slot)

        def reliability(self, slot):
            return self._inner.reliability(slot)

        def offer(self, slot):
            return self._inner.offer(slot)

    c_enum, c_lazy = OpCounters(), OpCounters()
    enum = SingleTaskGreedy(
        task, _Undeclared(costs), budget=scenario.budget, strategy="local",
        counters=c_enum,
    ).solve()
    lazy = SingleTaskGreedy(
        task, _Undeclared(costs), budget=scenario.budget, strategy="local",
        search="lazy", counters=c_lazy,
    ).solve()
    assert enum.assignment.plan_signature() == lazy.assignment.plan_signature()
    assert c_lazy.gain_evaluations == c_enum.gain_evaluations  # enumerated


def test_lazy_falls_back_on_heterogeneous_reliability():
    # With non-unit reliabilities the stale-bound argument is unsound
    # (gains can grow after an eviction); the solver must enumerate.
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=1, num_slots=30, num_workers=120, seed=21,
            reliability_range=(0.2, 0.9),
        )
    )
    task = scenario.single_task
    costs = SingleTaskCostTable(task, scenario.fresh_registry())
    c_enum, c_lazy = OpCounters(), OpCounters()
    enum = SingleTaskGreedy(
        task, costs, budget=scenario.budget, strategy="local", counters=c_enum
    ).solve()
    lazy = SingleTaskGreedy(
        task, costs, budget=scenario.budget, strategy="local", search="lazy",
        counters=c_lazy,
    ).solve()
    assert enum.assignment.plan_signature() == lazy.assignment.plan_signature()
    assert c_lazy.gain_evaluations == c_enum.gain_evaluations


# ----------------------------------------------------------------------
# Perf suite smoke (op-count gates only)
# ----------------------------------------------------------------------
def test_perfsuite_smoke_payload(tmp_path):
    from repro.bench.perfsuite import check_payload, run_suite

    payload = run_suite(smoke=True)
    assert payload["scenarios"][0]["plan_identical"]
    assert check_payload(payload) == []


def test_collect_perf_merges_series(tmp_path):
    import json

    from repro.bench.collect import collect_perf

    assert collect_perf(tmp_path) is None
    (tmp_path / "perf_suite.json").write_text(json.dumps({"suite": "perfsuite"}))
    merged = collect_perf(tmp_path)
    assert merged is not None and "perf_suite" in merged["series"]
