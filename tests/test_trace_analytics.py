"""The trace analytics engine (PR 9).

Causal span graphs (:mod:`repro.obs.causal`), the trace query/diff
API (:mod:`repro.obs.query`), the TraceRecorder context-manager /
error-path close guarantee, and the hypothesis masked-determinism
properties extended to elastic and degradation-ladder runs.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.degrade.chaos import InjectionSpec
from repro.journal.layer import InjectedCrash
from repro.obs import (
    SpanGraph,
    TraceQuery,
    TraceRecorder,
    causal_id,
    diff_traces,
    masked_trace_bytes,
    read_trace,
)
from repro.obs.causal import ROOT_SPAN
from repro.runtime import RunSpec, WorkloadSpec, build_runtime
from repro.runtime.factory import StreamRuntime

STREAM_SPEC = RunSpec(
    mode="stream",
    telemetry=True,
    workload=WorkloadSpec(
        horizon=10, task_rate=0.3, task_slots=8, initial_workers=12,
        join_rate=0.8, mean_lifetime=12.0, seed=9,
    ),
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8, snapshot_every=2,
)

PLAIN_SPEC = RunSpec(
    mode="plain",
    telemetry=True,
    workload=WorkloadSpec(tasks=6, slots=12, workers=150, seed=13),
)


@pytest.fixture(scope="module")
def stream_records():
    return build_runtime(STREAM_SPEC.validate()).run().telemetry.recorder.records


@pytest.fixture(scope="module")
def sharded_records():
    spec = STREAM_SPEC.replace(shards=2).validate()
    return build_runtime(spec).run().telemetry.recorder.records


class TestCausalStamping:
    def test_every_record_is_stamped(self, stream_records, sharded_records):
        for records in (stream_records, sharded_records):
            assert all("causal" in record for record in records)

    def test_derivation_is_the_stamping_contract(self, sharded_records):
        """A pre-causal trace (the stamp stripped) resolves to the very
        same span ids — the derivation and the stamp cannot drift."""
        for record in sharded_records:
            stripped = {k: v for k, v in record.items() if k != "causal"}
            assert causal_id(stripped) == record["causal"], record["type"]

    def test_vocabulary(self, stream_records):
        ids = {causal_id(record) for record in stream_records}
        assert ROOT_SPAN in ids
        assert any(name.startswith("task/") for name in ids)
        assert any(name.startswith("epoch/") for name in ids)
        assert "journal" not in ids  # no journal configured

    def test_plain_mode_has_task_spans(self):
        outcome = build_runtime(PLAIN_SPEC.validate()).run()
        ids = {causal_id(r) for r in outcome.telemetry.recorder.records}
        assert any(name.startswith("task/") for name in ids)


class TestSpanGraph:
    def test_every_seq_maps_to_a_span(self, sharded_records):
        graph = SpanGraph(sharded_records)
        for record in sharded_records:
            span = graph.span_of(record["seq"])
            assert record["seq"] in graph.spans[span].seqs

    def test_scope_spans_partition_the_parallel_axis(self, sharded_records):
        graph = SpanGraph(sharded_records)
        scopes = [s for s in graph.spans if s.startswith("scope/")]
        assert len(scopes) >= 2  # one per shard core
        for scope in scopes:
            assert graph.spans[scope].parent_id == ROOT_SPAN

    def test_task_attribution_matches_finalize_records(self, stream_records):
        graph = SpanGraph(stream_records)
        finalized = {
            record["task_id"]
            for record in stream_records
            if record["type"] == "finalize"
        }
        assert set(graph.tasks()) == finalized
        for row in graph.tasks().values():
            assert row["op_cost"] >= 0.0
            assert row["records"] >= 1

    def test_hot_tasks_sorted_by_descending_cost(self, stream_records):
        hot = SpanGraph(stream_records).hot_tasks(10)
        costs = [cost for _, cost in hot]
        assert costs == sorted(costs, reverse=True)

    def test_critical_path_is_bit_reproducible(self):
        spec = STREAM_SPEC.replace(shards=2).validate()
        paths = [
            SpanGraph(
                build_runtime(spec).run().telemetry.recorder.records
            ).critical_path()
            for _ in range(2)
        ]
        assert paths[0].total == paths[1].total
        assert paths[0].steps == paths[1].steps

    def test_critical_path_is_max_scope_cost(self, sharded_records):
        graph = SpanGraph(sharded_records)
        critical = graph.critical_path()
        scope_costs = [
            graph.subtree_cost(s) for s in graph.spans if s.startswith("scope/")
        ]
        assert critical.total == max(scope_costs)

    def test_from_trace_file(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        spec = STREAM_SPEC.replace(trace_out=str(trace)).validate()
        outcome = build_runtime(spec).run()
        graph = SpanGraph.from_trace(trace)
        live = SpanGraph(outcome.telemetry.recorder.records)
        assert graph.critical_path().total == live.critical_path().total


class TestTraceQuery:
    def test_type_filter_matches_tally(self, stream_records):
        query = TraceQuery(stream_records)
        for record_type, count in query.tally().items():
            assert query.of_type(record_type).count() == count

    def test_for_task_isolates_one_lifecycle(self, stream_records):
        graph = SpanGraph(stream_records)
        task_id = next(iter(graph.tasks()))
        rows = TraceQuery(stream_records).for_task(task_id)
        assert rows.count() >= 1
        assert all(
            causal_id(record) == f"task/{task_id}" for record in rows.records
        )

    def test_epoch_window_is_half_open(self, stream_records):
        query = TraceQuery(stream_records)
        total_epochs = query.of_type("epoch").count()
        assert total_epochs >= 2
        head = query.in_epochs(0, 1).of_type("epoch").count()
        assert head == 1
        assert query.in_epochs(0, total_epochs).of_type("epoch").count() == (
            total_epochs
        )

    def test_where_and_sum(self, stream_records):
        query = TraceQuery(stream_records).of_type("finalize")
        executed = query.where(lambda r: r.get("latency") is not None)
        assert executed.count() <= query.count()
        assert query.sum("op_cost") >= 0.0

    def test_scope_filter(self):
        spec = STREAM_SPEC.replace(shards=2).validate()
        records = build_runtime(spec).run().telemetry.recorder.records
        query = TraceQuery(records)
        shard0 = query.in_scope("shard-0").count()
        shard1 = query.in_scope("shard-1").count()
        assert shard0 > 0 and shard1 > 0
        assert shard0 + shard1 < query.count()  # run-level records remain


class TestTraceDiff:
    def test_same_spec_zero_divergence(self):
        spec = STREAM_SPEC.validate()
        runs = [
            build_runtime(spec).run().telemetry.recorder.records
            for _ in range(2)
        ]
        assert diff_traces(runs[0], runs[1]) is None

    def test_injected_fault_localizes_exactly(self):
        """The acceptance gate: a pair of runs differing only by an
        injected op-budget fault diverges at an exact, stable first
        ``seq`` inside a causal span."""
        spec = STREAM_SPEC.validate()
        clean = build_runtime(spec).run().telemetry.recorder.records
        fault = InjectionSpec(kind="slowdown", at=3.0, op_budget=60.0)
        seqs = []
        for _ in range(2):
            injected = StreamRuntime(spec, chaos=(fault,)).run()
            divergence = diff_traces(clean, injected.telemetry.recorder.records)
            assert divergence is not None
            assert divergence.record_a is not None
            assert divergence.record_b is not None
            assert divergence.span is not None
            seqs.append((divergence.seq, divergence.span))
        assert seqs[0] == seqs[1]

    def test_truncated_trace_reports_missing_side(self, stream_records):
        divergence = diff_traces(stream_records, stream_records[:-1])
        assert divergence is not None
        assert divergence.seq == stream_records[-1]["seq"]
        assert divergence.record_b is None
        text = divergence.describe()
        assert str(divergence.seq) in text

    def test_divergence_to_dict_roundtrips_json(self, stream_records):
        import json

        divergence = diff_traces(stream_records, stream_records[:-1])
        payload = json.loads(json.dumps(divergence.to_dict()))
        assert payload["seq"] == divergence.seq
        assert payload["span"] == divergence.span


class TestRecorderLifecycle:
    def test_context_manager_closes_on_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with TraceRecorder(path) as recorder:
                recorder.record("open", spec={"seed": 1})
                raise RuntimeError("boom")
        assert recorder.closed
        assert [r["type"] for r in read_trace(path)] == ["open"]

    def test_mid_epoch_kill_leaves_a_readable_trace(self, tmp_path):
        """Satellite: kill the run mid-epoch (journal crash injection)
        and the trace file on disk is still well-formed — every record
        up to the kill, no summary records after it."""
        trace = tmp_path / "killed.jsonl"
        spec = STREAM_SPEC.replace(
            journal=str(tmp_path / "journal"),
            crash_after_events=5,
            trace_out=str(trace),
        ).validate()
        with pytest.raises(InjectedCrash):
            build_runtime(spec).run()
        records = read_trace(trace)  # raises if any frame is torn
        types = {record["type"] for record in records}
        assert "open" in types
        assert "event" in types
        assert "run-complete" not in types
        assert "trace-summary" not in types
        # The analytics stack still works on the partial trace.
        graph = SpanGraph(records)
        assert graph.critical_path().total >= 0.0


class TestCli:
    @pytest.fixture()
    def traces(self, tmp_path):
        """Two same-spec trace files plus one injected-fault trace."""
        from repro.__main__ import main  # noqa: F401  (import check)

        paths = []
        for arm in ("a", "b"):
            path = tmp_path / f"{arm}.jsonl"
            spec = STREAM_SPEC.replace(trace_out=str(path)).validate()
            build_runtime(spec).run()
            paths.append(path)
        faulted = tmp_path / "faulted.jsonl"
        spec = STREAM_SPEC.replace(trace_out=str(faulted)).validate()
        StreamRuntime(
            spec, chaos=(InjectionSpec(kind="slowdown", at=3.0, op_budget=60.0),)
        ).run()
        paths.append(faulted)
        return paths

    def test_trace_diff_identical(self, traces, capsys):
        from repro.__main__ import main

        same_a, same_b, _ = traces
        assert main(["trace-diff", str(same_a), str(same_b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_trace_diff_divergent_json(self, traces, capsys):
        import json

        from repro.__main__ import main

        same_a, _, faulted = traces
        assert main(["trace-diff", "--json", str(same_a), str(faulted)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is False
        assert isinstance(payload["seq"], int)
        assert payload["span"]

    def test_trace_diff_missing_file_is_exit_2(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(
            ["trace-diff", str(tmp_path / "no.jsonl"), str(tmp_path / "pe.jsonl")]
        ) == 2

    def test_trace_report_json(self, traces, capsys):
        import json

        from repro.__main__ import main

        assert main(["trace-report", "--json", str(traces[0])]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["causal"]["critical_path"]["total"] > 0
        assert payload["counts"]["solve"] >= 1


class TestMaskedDeterminismProperties:
    """Satellite: the masked-trace determinism hypothesis property,
    extended from the obs suite's plain/stream grid to elastic
    migrations and the degradation ladder."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1_000), migrate_at=st.integers(1, 3))
    def test_elastic_migration_traces_are_deterministic(
        self, seed, migrate_at
    ):
        spec = STREAM_SPEC.replace(
            shards=2,
            elastic="fixed",
            migrate_at=migrate_at,
            workload=dataclasses.replace(STREAM_SPEC.workload, seed=seed),
        ).validate()
        traces = [
            masked_trace_bytes(
                build_runtime(spec).run().telemetry.recorder.records
            )
            for _ in range(2)
        ]
        assert traces[0] == traces[1]

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        ladder=st.sampled_from(
            [
                {"approx": "top_c", "approx_top_c": 2},
                {"approx": "floor", "approx_floor": 0.5},
                {"approx": "auto", "approx_top_c": 2, "approx_floor": 0.5},
            ]
        ),
    )
    def test_degradation_ladder_traces_are_deterministic(self, seed, ladder):
        spec = STREAM_SPEC.replace(
            workload=dataclasses.replace(STREAM_SPEC.workload, seed=seed),
            **ladder,
        ).validate()
        traces = [
            masked_trace_bytes(
                build_runtime(spec).run().telemetry.recorder.records
            )
            for _ in range(2)
        ]
        assert traces[0] == traces[1]
