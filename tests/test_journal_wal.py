"""Tests for the write-ahead log: framing, corruption, compaction."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalCorruptionError
from repro.geo.point import Point
from repro.journal.wal import Journal, WriteAheadLog, decode_event, encode_event
from repro.model.task import Task
from repro.model.worker import Worker
from repro.stream.events import BudgetRefresh, TaskArrival, WorkerJoin, WorkerLeave


class TestEventCodec:
    def test_round_trip_all_kinds(self):
        events = [
            TaskArrival(time=1.5, task=Task(1, Point(2, 3), 8, start_slot=2), budget=4.5),
            TaskArrival(time=2.0, task=Task(2, Point(0, 0), 5), budget=None),
            WorkerJoin(time=0.0, worker=Worker(7, {1: Point(1, 1)}, 0.5)),
            WorkerLeave(time=9.25, worker_id=7),
            BudgetRefresh(time=4.0, amount=2.5),
        ]
        for event in events:
            clone = decode_event(json.loads(json.dumps(encode_event(event))))
            assert clone == event

    def test_unknown_kind_raises_typed(self):
        with pytest.raises(JournalCorruptionError):
            decode_event({"kind": "meteor", "time": 0.0})


class TestWriteAheadLog:
    def _journal(self, tmp_path) -> Journal:
        journal = Journal(tmp_path / "j")
        journal.create({"demo": True})
        return journal

    def test_append_and_read_back(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append("event", event={"kind": "refresh", "time": 1.0, "amount": 2.0})
        journal.append("epoch", epoch=1, now=5.0)
        records, valid_bytes, truncated = WriteAheadLog.read(journal.wal_path)
        assert [r["type"] for r in records] == ["open", "event", "epoch"]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert not truncated
        assert valid_bytes == journal.wal_path.stat().st_size

    def test_torn_tail_is_tolerated_and_truncated_on_resume(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append("epoch", epoch=1, now=5.0)
        journal.wal.close()
        intact = journal.wal_path.read_bytes()
        journal.wal_path.write_bytes(intact + b"deadbeef {\"type\": \"ep")
        records, valid_bytes, truncated = WriteAheadLog.read(journal.wal_path)
        assert truncated
        assert len(records) == 2
        assert valid_bytes == len(intact)
        # open_for_resume chops the tail so appends stay well-framed.
        resumed = Journal(tmp_path / "j")
        resumed.open_for_resume()
        assert resumed.wal_path.read_bytes() == intact
        resumed.append("epoch", epoch=2, now=10.0)
        records, _, truncated = WriteAheadLog.read(resumed.wal_path)
        assert not truncated
        assert records[-1]["epoch"] == 2

    def test_damaged_final_full_line_is_tolerated(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append("epoch", epoch=1, now=5.0)
        journal.wal.close()
        lines = journal.wal_path.read_bytes().splitlines(keepends=True)
        lines[-1] = b"00000000 {\"type\": \"epoch\"}\n"  # bad checksum
        journal.wal_path.write_bytes(b"".join(lines))
        records, _, truncated = WriteAheadLog.read(journal.wal_path)
        assert truncated
        assert len(records) == 1

    def test_mid_log_damage_raises_typed(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append("epoch", epoch=1, now=5.0)
        journal.append("epoch", epoch=2, now=10.0)
        journal.wal.close()
        lines = journal.wal_path.read_bytes().splitlines(keepends=True)
        lines[1] = b"00000000 garbage\n"
        journal.wal_path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptionError):
            WriteAheadLog.read(journal.wal_path)

    def test_non_monotone_seq_raises_typed(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append("epoch", epoch=1, now=5.0)
        journal.next_seq = 1  # force a duplicate sequence number
        journal.append("epoch", epoch=2, now=10.0)
        with pytest.raises(JournalCorruptionError):
            WriteAheadLog.read(journal.wal_path)

    def test_missing_open_header_raises_typed(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.append("epoch", epoch=1, now=5.0)
        with pytest.raises(JournalCorruptionError):
            journal.open_for_resume()

    def test_missing_wal_raises_typed(self, tmp_path):
        """Recovering from a wrong/empty path (e.g. a sharded journal
        root, or a typo) must not surface a raw FileNotFoundError."""
        with pytest.raises(JournalCorruptionError):
            Journal(tmp_path / "nothing-here").open_for_resume()


class TestSnapshots:
    def test_latest_snapshot_and_torn_fallback(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.create({})
        journal.append("epoch", epoch=1, now=5.0)
        journal.write_snapshot({"epoch": 1})
        journal.append("epoch", epoch=2, now=10.0)
        newest = journal.write_snapshot({"epoch": 2})
        assert journal.latest_snapshot()["state"]["epoch"] == 2
        # A torn newest snapshot falls back to the older intact one.
        newest.write_bytes(b"deadbeef {\"wal_s")
        assert journal.latest_snapshot()["state"]["epoch"] == 1

    def test_create_clears_stale_snapshots(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.create({})
        journal.write_snapshot({"epoch": 1})
        journal.create({})  # a new incarnation in the same directory
        assert journal.latest_snapshot() is None

    def test_compaction_drops_covered_records_and_old_snapshots(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.create({})
        for epoch in range(1, 5):
            journal.append("epoch", epoch=epoch, now=float(epoch))
            journal.write_snapshot({"epoch": epoch})
        journal.append("epoch", epoch=5, now=5.0)
        dropped = journal.compact()
        assert dropped == 4
        records, _, _ = WriteAheadLog.read(journal.wal_path)
        assert [r["type"] for r in records] == ["open", "epoch"]
        assert records[-1]["epoch"] == 5
        assert records[-1]["seq"] == 5  # absolute numbering survives
        assert len(journal.snapshot_paths()) == 1
        # Recovery semantics intact: cursor = records past the snapshot.
        snapshot = journal.latest_snapshot()
        cursor = [r for r in records[1:] if r["seq"] > snapshot["wal_seq"]]
        assert [r["epoch"] for r in cursor] == [5]

    def test_compact_without_snapshot_is_a_no_op(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.create({})
        journal.append("epoch", epoch=1, now=1.0)
        assert journal.compact() == 0
        records, _, _ = WriteAheadLog.read(journal.wal_path)
        assert len(records) == 2

    def test_snapshot_bytes_deterministic(self, tmp_path):
        a = Journal(tmp_path / "a")
        a.create({"x": 1})
        b = Journal(tmp_path / "b")
        b.create({"x": 1})
        pa = a.write_snapshot({"state": [1.5, "two", None]})
        pb = b.write_snapshot({"state": [1.5, "two", None]})
        assert pa.read_bytes() == pb.read_bytes()


class TestCompactEdgeCases:
    def test_compact_empty_log_with_surviving_snapshot_raises_typed(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.create({})
        journal.append("epoch", epoch=1, now=1.0)
        journal.write_snapshot({"epoch": 1})
        journal.wal.close()
        journal.wal_path.write_bytes(b"")  # power loss tore the whole log
        with pytest.raises(JournalCorruptionError):
            journal.compact()
