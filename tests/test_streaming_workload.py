"""Tests for the streaming scenario generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.stream.events import TaskArrival, WorkerJoin, WorkerLeave
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events


def _small(**overrides):
    base = dict(
        horizon=50,
        task_rate=0.2,
        task_slots=10,
        initial_workers=10,
        worker_join_rate=0.5,
        mean_worker_lifetime=12.0,
        seed=3,
    )
    base.update(overrides)
    return StreamScenarioConfig(**base)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("horizon", 0),
            ("task_rate", -0.1),
            ("burstiness", 1.5),
            ("burst_cycle", 0.0),
            ("task_slots", 2),
            ("initial_workers", -1),
            ("worker_join_rate", -1.0),
            ("mean_worker_lifetime", 0.0),
            ("early_leave_prob", 2.0),
            ("budget_refresh_interval", -1.0),
            ("reliability_range", (1.5, 0.2)),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigurationError):
            _small(**{field: value})

    def test_with_overrides(self):
        config = _small().with_overrides(seed=9)
        assert config.seed == 9
        assert config.horizon == 50


class TestTraceShape:
    def test_events_sorted_and_typed(self):
        scenario = build_stream_events(_small())
        times = [e.time for e in scenario.events]
        assert times == sorted(times)
        assert scenario.worker_count == sum(
            isinstance(e, WorkerJoin) for e in scenario.events
        )
        assert scenario.task_count == sum(
            isinstance(e, TaskArrival) for e in scenario.events
        )
        # Every join has exactly one matching leave.
        joins = {e.worker.worker_id for e in scenario.events if isinstance(e, WorkerJoin)}
        leaves = [e.worker_id for e in scenario.events if isinstance(e, WorkerLeave)]
        assert sorted(leaves) == sorted(joins)

    def test_initial_workers_join_at_zero(self):
        scenario = build_stream_events(_small(initial_workers=7))
        at_zero = [
            e for e in scenario.events if isinstance(e, WorkerJoin) and e.time == 0.0
        ]
        assert len(at_zero) >= 7

    def test_worker_availability_is_contiguous_until_leave(self):
        scenario = build_stream_events(_small())
        leave_by_id = {
            e.worker_id: e.time
            for e in scenario.events
            if isinstance(e, WorkerLeave)
        }
        for event in scenario.events:
            if not isinstance(event, WorkerJoin):
                continue
            slots = sorted(event.worker.availability)
            assert slots, "workers must advertise at least one slot"
            assert slots == list(range(slots[0], slots[-1] + 1))
            assert slots[0] >= 1
            # A worker never leaves before serving at least one slot.
            assert leave_by_id[event.worker.worker_id] > slots[0]

    def test_task_start_slots_follow_arrival_times(self):
        scenario = build_stream_events(_small())
        for event in scenario.events:
            if isinstance(event, TaskArrival):
                assert event.task.start_slot == int(event.time) + 1

    def test_budget_refresh_events(self):
        scenario = build_stream_events(
            _small(budget_refresh_interval=10.0, budget_refresh_amount=5.0)
        )
        refreshes = [
            e for e in scenario.events if type(e).__name__ == "BudgetRefresh"
        ]
        assert [e.time for e in refreshes] == [10.0, 20.0, 30.0, 40.0]
        assert all(e.amount == 5.0 for e in refreshes)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = build_stream_events(_small(seed=21))
        b = build_stream_events(_small(seed=21))
        assert a.signature() == b.signature()

    def test_different_seed_different_trace(self):
        a = build_stream_events(_small(seed=21))
        b = build_stream_events(_small(seed=22))
        assert a.signature() != b.signature()

    def test_burstiness_changes_arrivals_only_not_workers(self):
        smooth = build_stream_events(_small(burstiness=0.0))
        bursty = build_stream_events(_small(burstiness=0.8))
        smooth_workers = [
            part for part in smooth.signature() if part[0] in ("join", "leave")
        ]
        bursty_workers = [
            part for part in bursty.signature() if part[0] in ("join", "leave")
        ]
        assert smooth_workers == bursty_workers
        smooth_tasks = [part for part in smooth.signature() if part[0] == "task"]
        bursty_tasks = [part for part in bursty.signature() if part[0] == "task"]
        assert smooth_tasks != bursty_tasks

    def test_zero_rates_yield_worker_only_trace(self):
        scenario = build_stream_events(
            _small(task_rate=0.0, worker_join_rate=0.0, initial_workers=3)
        )
        assert scenario.task_count == 0
        assert scenario.worker_count == 3


class TestHotspotDrift:
    """The elastic skew preset: arrivals drift onto one POI hotspot."""

    def test_zero_drift_is_byte_identical_to_plain_trace(self):
        plain = build_stream_events(_small())
        explicit = build_stream_events(_small(hotspot_drift=0.0))
        assert plain.signature() == explicit.signature()

    def test_drift_is_deterministic_in_seed(self):
        a = build_stream_events(_small(hotspot_drift=0.7))
        b = build_stream_events(_small(hotspot_drift=0.7))
        assert a.signature() == b.signature()

    def test_drift_changes_task_locations_only(self):
        plain = build_stream_events(_small())
        drifted = build_stream_events(_small(hotspot_drift=1.0))

        def parts(trace, kinds):
            return [p for p in trace.signature() if p[0] in kinds]

        assert parts(plain, ("join", "leave")) == parts(drifted, ("join", "leave"))
        plain_tasks = parts(plain, ("task",))
        drifted_tasks = parts(drifted, ("task",))
        assert plain_tasks != drifted_tasks
        # Same arrival process: only locations move, never times/ids.
        assert [t[:4] for t in plain_tasks] == [t[:4] for t in drifted_tasks]

    def test_drift_concentrates_late_arrivals(self):
        """With full drift, late-window arrivals cluster far tighter
        than the early window (the spatial skew the elastic controller
        rebalances against)."""
        config = _small(hotspot_drift=1.0, task_rate=2.0, horizon=60)
        trace = build_stream_events(config)
        tasks = [e for e in trace.events if isinstance(e, TaskArrival)]
        half = config.horizon / 2
        early = [e.task.loc for e in tasks if e.time < half]
        late = [e.task.loc for e in tasks if e.time >= half]
        assert len(early) > 10 and len(late) > 10

        def spread(points):
            cx = sum(p.x for p in points) / len(points)
            cy = sum(p.y for p in points) / len(points)
            return sum(
                ((p.x - cx) ** 2 + (p.y - cy) ** 2) ** 0.5 for p in points
            ) / len(points)

        assert spread(late) < spread(early) * 0.75

    def test_rejects_out_of_range_drift(self):
        with pytest.raises(ConfigurationError):
            _small(hotspot_drift=-0.1)
        with pytest.raises(ConfigurationError):
            _small(hotspot_drift=1.5)
