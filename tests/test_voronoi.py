"""Tests for the exact 1-D order-k Voronoi diagram."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.voronoi import OrderKVoronoi
from repro.errors import ConfigurationError


class TestConstruction:
    def test_no_sites_single_cell(self):
        d = OrderKVoronoi(10, 2, [])
        assert len(d) == 1
        assert d.cells[0].lo == 1 and d.cells[0].hi == 10
        assert d.cells[0].sites == ()

    def test_fewer_sites_than_k(self):
        d = OrderKVoronoi(10, 3, [4, 7])
        assert len(d) == 1
        assert d.cells[0].sites == (4, 7)

    def test_cells_partition_domain(self):
        d = OrderKVoronoi(20, 2, [3, 8, 15])
        covered = []
        for cell in d.cells:
            covered.extend(range(cell.lo, cell.hi + 1))
        assert covered == list(range(1, 21))

    def test_rejects_bad_sites(self):
        with pytest.raises(ConfigurationError):
            OrderKVoronoi(10, 2, [0])
        with pytest.raises(ConfigurationError):
            OrderKVoronoi(10, 2, [11])

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            OrderKVoronoi(0, 2, [])
        with pytest.raises(ConfigurationError):
            OrderKVoronoi(10, 0, [])

    def test_order1_midpoint_boundary(self):
        d = OrderKVoronoi(10, 1, [2, 8])
        # Midpoint of 2 and 8 is 5; tie goes to the smaller site.
        assert d.knn(5) == (2,)
        assert d.knn(6) == (8,)


class TestQueries:
    def test_cell_of_and_knn(self):
        d = OrderKVoronoi(100, 2, [2, 4, 7, 9])
        # Fig. 3(c): V(tau2, tau4) covers slots 1..4 approximately.
        assert d.knn(1) == (2, 4)
        assert d.knn(3) == (2, 4)

    def test_cell_of_out_of_range(self):
        d = OrderKVoronoi(10, 1, [5])
        with pytest.raises(ConfigurationError):
            d.cell_of(0)

    def test_cell_width(self):
        d = OrderKVoronoi(10, 1, [5])
        assert d.cells[0].width == 10
        assert 3 in d.cells[0]

    def test_average_cell_count_bound(self):
        d = OrderKVoronoi(100, 3, [1, 2, 3, 4])
        assert d.average_cell_count_bound() == 3 * 97
        assert len(d) <= d.average_cell_count_bound()


@settings(deadline=None, max_examples=60)
@given(
    m=st.integers(3, 50),
    sites=st.sets(st.integers(1, 50), max_size=12),
    k=st.integers(1, 4),
)
def test_sliding_window_matches_brute_force(m, sites, k):
    sites = {s for s in sites if s <= m}
    fast = OrderKVoronoi(m, k, sorted(sites)).cells
    slow = OrderKVoronoi.brute_force_cells(m, k, sorted(sites))
    assert fast == slow


@settings(deadline=None, max_examples=60)
@given(
    m=st.integers(3, 50),
    sites=st.sets(st.integers(1, 50), min_size=1, max_size=12),
    query=st.integers(1, 50),
    k=st.integers(1, 4),
)
def test_diagram_knn_matches_direct_query(m, sites, query, k):
    """The diagram's precomputed k-NN set equals a direct k-NN query."""
    sites = {s for s in sites if s <= m}
    if not sites or query > m:
        return
    d = OrderKVoronoi(m, k, sorted(sites))
    assert d.knn(query) == OrderKVoronoi.site_knn(query, sorted(sites), k)


@settings(deadline=None, max_examples=40)
@given(
    m=st.integers(3, 40),
    sites=st.sets(st.integers(1, 40), min_size=1, max_size=10),
    k=st.integers(1, 3),
)
def test_lemma8_cells_are_knn_constant(m, sites, k):
    """Lemma 8: within a cell, every slot shares the end slots' k-NN."""
    sites = {s for s in sites if s <= m}
    if not sites:
        return
    d = OrderKVoronoi(m, k, sorted(sites))
    for cell in d.cells:
        knns = {
            OrderKVoronoi.site_knn(u, sorted(sites), k)
            for u in range(cell.lo, cell.hi + 1)
        }
        assert len(knns) == 1
