"""Tests for ``repro.par``: the serial/thread/process executor.

The subsystem's contract is byte-identity — an executor may only
change *where* a shard's solve runs, never what it computes — so most
of this file compares executor arms against the serial reference:
plans, per-shard metrics, OpCounters, masked telemetry traces, and
(via hypothesis) the snapshot-codec round trip across a real process
boundary.  The rest pins the typed rejection surface: uncomposable
spec pairings, zero-width pools, and the deprecated
``MasterWorkerPool`` shim.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SchedulingError, SpecError
from repro.obs.trace import masked_trace_bytes
from repro.par import EXECUTOR_KINDS, Executor, executor_from_spec, validate_max_workers
from repro.runtime import RunSpec, WorkloadSpec, build_serving_solver
from repro.runtime.factory import StreamRuntime
from repro.workloads.scenario import ScenarioConfig, build_scenario

_STREAM = RunSpec(
    mode="stream",
    workload=WorkloadSpec(
        horizon=10, task_rate=0.3, task_slots=8, initial_workers=12,
        join_rate=0.8, mean_lifetime=12.0, seed=9,
    ),
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8,
)


@pytest.fixture(scope="module")
def plain_scenario():
    return build_scenario(
        ScenarioConfig(num_tasks=6, num_slots=12, num_workers=150, seed=13)
    )


def _plain_report(scenario, kind: str, shards: int):
    spec = RunSpec(mode="plain", shards=shards, executor=kind).validate()
    server = build_serving_solver(
        spec, scenario.pool, scenario.bbox, force_sharded=True
    )
    return server.assign(scenario.tasks)


def _stream_outcome(spec: RunSpec):
    # force_sharded keeps the serial arm on the same coordinator
    # composition (ShardedStreamMetrics) the executor arms produce.
    return StreamRuntime(spec.validate(), force_sharded=True).run()


def _stream_evidence(outcome):
    counters = outcome.counters
    if not isinstance(counters, tuple):
        counters = (counters,)
    metrics = outcome.metrics
    return (
        outcome.plan_signature,
        [c.to_dict() for c in counters],
        [asdict(m) for m in metrics.per_shard],
        metrics.makespan,
        metrics.serial_cost,
    )


class TestExecutor:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown executor kind"):
            Executor("fiber")

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError, match="max_workers must be >= 1"):
            validate_max_workers(0)
        with pytest.raises(ConfigurationError, match="got -2"):
            Executor("thread", max_workers=-2)

    def test_process_rejects_closures(self):
        with pytest.raises(ConfigurationError, match="JSON work units"):
            Executor("process").run_jobs({0: lambda: 1})

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_map_units_preserves_order(self, kind):
        with Executor(kind, max_workers=2) as executor:
            # len is importable from anywhere, so it survives pickling
            # into a worker process.
            assert executor.map_units(len, ["ccc", "bb", "a", ""]) == [3, 2, 1, 0]

    def test_thread_jobs_match_serial(self):
        jobs = {owner: (lambda o=owner: o * o) for owner in range(7)}
        serial = Executor("serial").run_jobs(jobs)
        threaded = Executor("thread", max_workers=3).run_jobs(jobs)
        assert threaded == serial

    def test_worker_errors_propagate(self):
        def boom():
            raise ValueError("shard 3 exploded")

        with pytest.raises(ValueError, match="shard 3 exploded"):
            Executor("thread", max_workers=2).run_jobs({0: boom})

    def test_spec_resolution(self):
        assert executor_from_spec(RunSpec()) is None
        executor = executor_from_spec(
            RunSpec(mode="stream", executor="thread", max_workers=4)
        )
        assert (executor.kind, executor.max_workers) == ("thread", 4)

    def test_close_is_idempotent(self):
        executor = Executor("process", persistent=True)
        executor.map_units(len, ["x"])
        executor.close()
        executor.close()


class TestSpecPairings:
    def test_unknown_executor_kind(self):
        with pytest.raises(SpecError, match="serial.*thread.*process"):
            RunSpec(executor="fiber").validate()

    def test_zero_max_workers(self):
        with pytest.raises(SpecError, match="max_workers"):
            RunSpec(
                mode="stream", executor="thread", max_workers=0
            ).validate()

    def test_max_workers_requires_executor(self):
        with pytest.raises(SpecError, match="requires executor"):
            RunSpec(max_workers=2).validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "batch"},
            {"mode": "stream", "journal": "/tmp/never-used"},
            {"mode": "stream", "approx": "top_c", "approx_top_c": 2},
            {"mode": "stream", "shards": 2, "elastic": "auto"},
            {"mode": "plain", "telemetry": True},
        ],
    )
    def test_uncomposable_pairings_rejected(self, overrides):
        with pytest.raises(SpecError):
            RunSpec(executor="process", **overrides).validate()

    def test_stream_telemetry_composes(self):
        spec = RunSpec(
            mode="stream", shards=2, telemetry=True,
            executor="process", max_workers=2,
        )
        assert spec.validate() is spec


class TestPlainIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_byte_identical_to_serial(self, plain_scenario, kind, shards):
        reference = _plain_report(plain_scenario, "serial", shards)
        report = _plain_report(plain_scenario, kind, shards)
        assert report.plan_signature() == reference.plan_signature()
        assert report.counters.to_dict() == reference.counters.to_dict()
        assert report.per_task_cost == reference.per_task_cost
        assert report.qualities == reference.qualities
        assert report.reconciled_task_ids == reference.reconciled_task_ids
        assert report.makespan == reference.makespan


class TestStreamIdentity:
    @pytest.mark.parametrize("shards", [1, 2])
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_byte_identical_to_serial(self, kind, shards):
        reference = _stream_outcome(_STREAM.replace(shards=shards))
        outcome = _stream_outcome(
            _STREAM.replace(shards=shards, executor=kind)
        )
        assert _stream_evidence(outcome) == _stream_evidence(reference)


class TestTelemetryMerge:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_masked_trace_and_registry_match_serial(self, kind):
        spec = _STREAM.replace(shards=2, telemetry=True)
        reference = _stream_outcome(spec)
        outcome = _stream_outcome(spec.replace(executor=kind))

        def comparable(telemetry):
            # The "open" record embeds the spec dict, which legitimately
            # differs between the arms (executor field); every other
            # record must match byte-for-byte under the timing mask.
            records = [
                r for r in telemetry.recorder.records if r["type"] != "open"
            ]
            return (
                masked_trace_bytes(records),
                telemetry.registry.to_dict(include_timing=False),
            )

        assert comparable(outcome.telemetry) == comparable(reference.telemetry)


class TestProcessRoundTrip:
    """Work units survive the snapshot codec across a real fork."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3),
           shards=st.sampled_from([1, 2, 4]))
    def test_plan_signature_exact(self, seed, shards):
        base = _STREAM.replace(
            workload=WorkloadSpec(
                horizon=8, task_rate=0.4, task_slots=6, initial_workers=10,
                join_rate=0.6, mean_lifetime=10.0, seed=seed,
            ),
            shards=shards,
        )
        reference = _stream_outcome(base)
        outcome = _stream_outcome(base.replace(executor="process"))
        assert _stream_evidence(outcome) == _stream_evidence(reference)


class TestThreadpoolShim:
    def test_warns_once_per_process(self):
        from repro.parallel.threadpool import (
            MasterWorkerPool,
            reset_deprecation_warning,
        )

        reset_deprecation_warning()
        with pytest.warns(DeprecationWarning, match="repro.par.Executor"):
            MasterWorkerPool(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            MasterWorkerPool(2)  # second construction stays silent

    def test_zero_threads_still_scheduling_error(self):
        from repro.parallel.threadpool import (
            MasterWorkerPool,
            reset_deprecation_warning,
        )

        reset_deprecation_warning()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # The historical rejection fires before the deprecation
            # warning: failing constructors must not burn the
            # once-per-process warning.
            with pytest.raises(SchedulingError):
                MasterWorkerPool(0)

    def test_results_match_executor(self):
        from repro.parallel.threadpool import MasterWorkerPool

        jobs = {owner: (lambda o=owner: o + 10) for owner in range(5)}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert MasterWorkerPool(2).run(jobs) == Executor(
                "thread", max_workers=2
            ).run_jobs(jobs)


_SIM_SMALL = [
    "simulate", "--seed", "7", "--horizon", "12", "--task-slots", "6",
    "--initial-workers", "10", "--join-rate", "0.3",
]


class TestCLI:
    def test_unknown_executor_is_spec_error_not_traceback(self, capsys):
        from repro.__main__ import main

        code = main([*_SIM_SMALL, "--executor", "fiber"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown executor" in captured.err
        assert "Traceback" not in captured.err

    def test_zero_max_workers_is_argparse_error(self, capsys):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [*_SIM_SMALL, "--executor", "process", "--max-workers", "0"]
            )
        assert "max_workers must be >= 1" in capsys.readouterr().err

    def test_process_executor_runs(self, capsys):
        from repro.__main__ import main

        code = main(
            [*_SIM_SMALL, "--shards", "2", "--executor", "process",
             "--max-workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "executor=process max_workers=2" in out
