"""Tests for execution realization (failure injection)."""

from __future__ import annotations

import pytest

from repro.core.greedy import IndexedSingleTaskGreedy
from repro.engine.costs import SingleTaskCostTable
from repro.engine.realization import expected_realized_quality, simulate_execution
from repro.model.task import TaskSet
from repro.workloads.scenario import ScenarioConfig, build_scenario


def make_instance(reliability_range, seed=37):
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=1,
            num_slots=30,
            num_workers=200,
            seed=seed,
            reliability_range=reliability_range,
        )
    )
    costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
    result = IndexedSingleTaskGreedy(
        scenario.single_task, costs, budget=scenario.budget
    ).solve()
    return scenario, result


class TestSimulateExecution:
    def test_perfect_workers_complete_everything(self):
        scenario, result = make_instance((1.0, 1.0))
        outcome = simulate_execution(
            scenario.tasks, scenario.pool, result.assignment, seed=1
        )
        assert outcome.completion_rate == 1.0
        assert not outcome.failed
        task_id = scenario.single_task.task_id
        assert outcome.qualities[task_id] == pytest.approx(result.quality)

    def test_unreliable_workers_fail_sometimes(self):
        scenario, result = make_instance((0.2, 0.6))
        outcome = simulate_execution(
            scenario.tasks, scenario.pool, result.assignment, seed=1
        )
        assert outcome.failed, "some assignments should fail at lambda <= 0.6"
        assert 0.0 < outcome.completion_rate < 1.0
        assert set(outcome.completed) | set(outcome.failed) == {
            (r.task_id, r.slot) for r in result.assignment
        }

    def test_deterministic_per_seed(self):
        scenario, result = make_instance((0.3, 0.9))
        a = simulate_execution(scenario.tasks, scenario.pool, result.assignment, seed=5)
        b = simulate_execution(scenario.tasks, scenario.pool, result.assignment, seed=5)
        assert a.completed == b.completed

    def test_empty_assignment(self):
        scenario, result = make_instance((1.0, 1.0))
        from repro.model.assignment import Assignment

        outcome = simulate_execution(scenario.tasks, scenario.pool, Assignment(), seed=1)
        assert outcome.completion_rate == 1.0
        assert outcome.sum_quality == 0.0


class TestExpectedRealizedQuality:
    def test_bounded_by_perfect_quality(self):
        scenario, result = make_instance((0.4, 0.9))
        expected = expected_realized_quality(
            scenario.tasks, scenario.pool, result.assignment, trials=30
        )
        task_id = scenario.single_task.task_id
        from repro.core.quality import task_quality

        perfect = task_quality(
            scenario.single_task.num_slots,
            3,
            {r.slot: 1.0 for r in result.assignment},
        )
        assert 0.0 < expected[task_id] <= perfect + 1e-9

    def test_higher_reliability_pools_do_better(self):
        low_scenario, low_result = make_instance((0.2, 0.5))
        high_scenario, high_result = make_instance((0.8, 1.0))
        low = expected_realized_quality(
            low_scenario.tasks, low_scenario.pool, low_result.assignment, trials=30
        )
        high = expected_realized_quality(
            high_scenario.tasks, high_scenario.pool, high_result.assignment, trials=30
        )
        low_id = low_scenario.single_task.task_id
        high_id = high_scenario.single_task.task_id
        assert high[high_id] > low[low_id]

    def test_planned_metric_correlates_with_realization(self):
        """The Eq.-4 planning quality and the Monte-Carlo realized
        quality should rank reliability regimes the same way."""
        planned, realized = [], []
        for rng_pair in ((0.3, 0.6), (0.6, 0.9), (0.9, 1.0)):
            scenario, result = make_instance(rng_pair)
            planned.append(result.quality)
            expected = expected_realized_quality(
                scenario.tasks, scenario.pool, result.assignment, trials=30
            )
            realized.append(expected[scenario.single_task.task_id])
        assert planned == sorted(planned)
        assert realized == sorted(realized)
