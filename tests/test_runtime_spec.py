"""RunSpec: round-trip exactness and typed rejection of bad combos.

The spec is the new serving surface — a spec that silently drops a
field, or accepts a pairing the factory cannot compose, would turn
into a mis-configured production run.  Property tests pin the
``from_dict(to_dict(spec)) == spec`` contract over the whole valid
space (crash-injection and halo fields included), and every
documented invalid combination must fail with the typed
:class:`~repro.errors.SpecError`.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpecError
from repro.runtime import (
    SEARCH_MODES,
    SERVING_MODES,
    RunSpec,
    SolverVariant,
    WorkloadSpec,
)


@st.composite
def valid_specs(draw) -> RunSpec:
    """Any spec the validator accepts, across every capability axis."""
    mode = draw(st.sampled_from(SERVING_MODES))
    use_index = draw(st.booleans())
    search = "enumerate" if use_index else draw(st.sampled_from(SEARCH_MODES))
    shards = 1 if mode == "batch" else draw(st.integers(1, 4))
    journal = None
    crash = None
    crash_phase = "apply"
    sync = False
    if mode == "stream" and draw(st.booleans()):
        journal = draw(st.sampled_from(["/tmp/journal", "relative/journal"]))
        crash = draw(st.one_of(st.none(), st.integers(0, 50)))
        crash_phase = draw(st.sampled_from(["apply", "append"]))
        sync = draw(st.booleans())
    telemetry = mode != "batch" and draw(st.booleans())
    trace_out = (
        draw(st.one_of(st.none(), st.just("traces/run.jsonl")))
        if telemetry else None
    )
    # Degradation modes compose with the un-indexed, single-shard,
    # journal-free solvers only; "auto" additionally needs the stream
    # telemetry signals.
    approx = "off"
    approx_top_c = None
    approx_floor = None
    slo_p99 = None
    if mode != "batch" and shards == 1 and journal is None and not use_index:
        choices = ["off", "top_c", "floor"]
        if mode == "stream" and telemetry:
            choices.append("auto")
        approx = draw(st.sampled_from(choices))
    if approx in ("top_c", "auto"):
        approx_top_c = draw(st.integers(1, 8))
    if approx in ("floor", "auto"):
        approx_floor = draw(st.floats(0.01, 1.0, allow_nan=False))
    if approx == "auto":
        slo_p99 = draw(
            st.one_of(st.none(), st.floats(0.5, 50.0, allow_nan=False))
        )
    queue_low = draw(st.integers(0, 5))
    queue_high = draw(st.integers(queue_low + 1, 12))
    tasks = draw(st.integers(1, 6))
    workload = WorkloadSpec(
        seed=draw(st.integers(0, 10_000)),
        distribution=draw(st.sampled_from(["uniform", "gaussian", "zipfian"])),
        tasks=tasks,
        slots=draw(st.integers(3, 40)),
        workers=draw(st.integers(1, 200)),
        rounds=draw(st.integers(1, tasks)),
        horizon=draw(st.integers(1, 60)),
        task_rate=draw(st.floats(0.0, 1.0, allow_nan=False)),
        burstiness=draw(st.floats(0.0, 1.0, allow_nan=False)),
        task_slots=draw(st.integers(3, 30)),
        initial_workers=draw(st.integers(0, 50)),
        join_rate=draw(st.floats(0.0, 2.0, allow_nan=False)),
        mean_lifetime=draw(st.floats(1.0, 50.0, allow_nan=False)),
        early_leave_prob=draw(st.floats(0.0, 1.0, allow_nan=False)),
    )
    return RunSpec(
        mode=mode,
        workload=workload,
        backend=draw(st.sampled_from(["python", "numpy"])),
        search=search,
        use_index=use_index,
        k=draw(st.integers(1, 5)),
        ts=draw(st.integers(2, 6)),
        budget_fraction=draw(st.floats(0.05, 1.0, allow_nan=False)),
        shards=shards,
        halo=draw(
            st.one_of(
                st.just("auto"),
                st.floats(0.0, 100.0, allow_nan=False),
            )
        ),
        cells_per_side=draw(st.one_of(st.none(), st.integers(1, 6))),
        epoch_length=draw(st.floats(0.5, 10.0, allow_nan=False)),
        index_mode=draw(st.sampled_from(["incremental", "rebuild"])),
        max_active_tasks=draw(st.integers(1, 8)),
        max_queue_depth=draw(st.integers(0, 16)),
        pool_budget=draw(
            st.one_of(st.none(), st.floats(0.0, 100.0, allow_nan=False))
        ),
        journal=journal,
        snapshot_every=draw(st.integers(0, 6)),
        sync=sync,
        crash_after_events=crash,
        crash_phase=crash_phase,
        telemetry=telemetry,
        trace_out=trace_out,
        approx=approx,
        approx_top_c=approx_top_c,
        approx_floor=approx_floor,
        degrade_queue_high=queue_high,
        degrade_queue_low=queue_low,
        slo_p99=slo_p99,
    ).validate()


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(valid_specs())
    def test_dict_round_trip_is_exact(self, spec):
        assert RunSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=40, deadline=None)
    @given(valid_specs())
    def test_json_round_trip_is_exact(self, spec):
        """Floats survive the JSON text representation bit-for-bit
        (shortest-repr round trip) — including halo radii and
        crash-injection boundaries."""
        text = json.dumps(spec.to_dict())
        assert RunSpec.from_dict(json.loads(text)) == spec

    def test_file_round_trip(self, tmp_path):
        spec = RunSpec(
            mode="stream",
            shards=3,
            halo=12.5,
            journal="journals/run-1",
            snapshot_every=2,
            crash_after_events=17,
            crash_phase="append",
            workload=WorkloadSpec(horizon=30, task_rate=0.35, seed=11),
        )
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert RunSpec.from_json(path) == spec

    def test_replace_returns_independent_copy(self):
        spec = RunSpec()
        other = spec.replace(shards=4, backend="numpy")
        assert spec.shards == 1  # frozen original untouched
        assert (other.shards, other.backend) == (4, "numpy")

    def test_solver_variant_projection(self):
        spec = RunSpec(backend="numpy", search="enumerate", use_index=True)
        assert spec.solver_variant == SolverVariant(
            backend="numpy", search="enumerate", use_index=True
        )


class TestRejection:
    """Every uncomposable or malformed spec fails with SpecError."""

    @pytest.mark.parametrize(
        "changes",
        [
            dict(mode="magic"),
            dict(backend="fortran"),
            dict(search="magic"),
            dict(index_mode="magic"),
            dict(crash_phase="magic"),
            dict(k=0),
            dict(ts=1),
            dict(budget_fraction=0.0),
            dict(budget_fraction=1.5),
            dict(shards=0),
            dict(halo="wide"),
            dict(halo=-2.0),
            dict(epoch_length=0.0),
            dict(max_active_tasks=0),
            dict(max_queue_depth=-1),
            dict(snapshot_every=-1),
            # The capability pairings the runtime cannot compose.
            dict(mode="plain", journal="/tmp/j"),
            dict(mode="batch", journal="/tmp/j"),
            dict(mode="batch", shards=2),
            dict(crash_after_events=3),          # crash without journal
            dict(sync=True),                     # sync without journal
            dict(trace_out="t.jsonl"),           # trace without telemetry
            dict(mode="batch", telemetry=True),
            dict(use_index=True, search="lazy"),
            dict(
                mode="stream", journal="/tmp/j", crash_after_events=-1
            ),
            # Degradation (the PR-7 knobs).
            dict(approx="magic"),
            dict(approx="top_c"),                # mode without its knob
            dict(approx="floor"),
            dict(approx="top_c", approx_top_c=0),
            dict(approx="floor", approx_floor=0.0),
            dict(approx="floor", approx_floor=1.5),
            dict(approx_top_c=3),                # knob without its mode
            dict(approx_floor=0.5),
            dict(mode="batch", approx="top_c", approx_top_c=3),
            dict(mode="stream", shards=2, approx="top_c", approx_top_c=3),
            dict(
                mode="stream", journal="/tmp/j",
                approx="floor", approx_floor=0.5,
            ),
            dict(use_index=True, approx="top_c", approx_top_c=3),
            dict(                                # auto without telemetry
                mode="stream", approx="auto",
                approx_top_c=3, approx_floor=0.5,
            ),
            dict(                                # auto outside stream
                mode="plain", telemetry=True, approx="auto",
                approx_top_c=3, approx_floor=0.5,
            ),
            dict(slo_p99=10.0),                  # SLO without the ladder
            dict(
                mode="stream", telemetry=True, approx="auto",
                approx_top_c=3, approx_floor=0.5, slo_p99=0.0,
            ),
            dict(degrade_queue_high=0),
            dict(degrade_queue_low=-1),
            dict(degrade_queue_low=6, degrade_queue_high=6),  # inverted
        ],
    )
    def test_invalid_spec_raises_typed(self, changes):
        with pytest.raises(SpecError):
            RunSpec(**changes).validate()

    @pytest.mark.parametrize(
        "changes",
        [
            dict(tasks=0),
            dict(slots=2),
            dict(workers=0),
            dict(rounds=0),
            dict(rounds=5, tasks=2),
            dict(horizon=0),
            dict(task_slots=2),
            dict(initial_workers=-1),
            dict(distribution="magic"),
        ],
    )
    def test_invalid_workload_raises_typed(self, changes):
        with pytest.raises(SpecError):
            RunSpec(workload=WorkloadSpec(**changes)).validate()

    def test_unknown_field_rejected(self):
        """A typo'd spec file must not silently run with defaults."""
        with pytest.raises(SpecError, match="shard_count"):
            RunSpec.from_dict({"shard_count": 4})
        with pytest.raises(SpecError, match="horizons"):
            RunSpec.from_dict({"workload": {"horizons": 10}})

    def test_non_object_payloads_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.from_dict(["not", "a", "spec"])
        with pytest.raises(SpecError):
            RunSpec.from_dict({"workload": 7})

    def test_from_json_missing_and_malformed(self, tmp_path):
        with pytest.raises(SpecError):
            RunSpec.from_json(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SpecError):
            RunSpec.from_json(bad)

    def test_from_dict_validates_combos(self):
        with pytest.raises(SpecError):
            RunSpec.from_dict({"mode": "plain", "journal": "/tmp/j"})

    def test_spec_error_is_configuration_error(self):
        """Typed, but still catchable as the library-wide hierarchy."""
        from repro.errors import ConfigurationError, TCSCError

        assert issubclass(SpecError, ConfigurationError)
        assert issubclass(SpecError, TCSCError)
