"""Property tests for incremental index maintenance.

The streaming subsystem's correctness rests on two invariants:

* an :class:`OrderKVoronoi` maintained by ``insert_site`` /
  ``remove_site`` is *identical* to one freshly built from the same
  site set, while constructing far fewer cells;
* a :class:`TreeIndex` repaired with ``refresh_slots`` after arbitrary
  cost churn answers ``find_best`` exactly like a freshly built index
  over the same evaluator and cost state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.core.tree_index import TreeIndex
from repro.core.voronoi import OrderKVoronoi
from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError, WorkerUnavailableError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.worker import Worker, WorkerPool


class TestVoronoiIncremental:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("m,k", [(30, 1), (40, 2), (60, 3), (25, 5)])
    def test_random_sequence_matches_fresh_build(self, seed, m, k):
        rng = np.random.default_rng(seed)
        diagram = OrderKVoronoi(m, k, [])
        reference: set[int] = set()
        for _ in range(80):
            if reference and rng.uniform() < 0.35:
                site = int(rng.choice(sorted(reference)))
                diagram.remove_site(site)
                reference.discard(site)
            else:
                site = int(rng.integers(1, m + 1))
                if site in reference:
                    continue
                diagram.insert_site(site)
                reference.add(site)
            fresh = OrderKVoronoi(m, k, sorted(reference))
            assert diagram.sites == fresh.sites
            assert diagram.cells == fresh.cells, (
                f"divergence with sites={sorted(reference)}"
            )
            # The lookup structure must stay consistent too.
            for slot in range(1, m + 1, 7):
                assert diagram.knn(slot) == fresh.knn(slot)

    def test_incremental_builds_fewer_cells_than_rebuilds(self):
        m, k = 200, 3
        sites = list(range(5, 200, 5))
        diagram = OrderKVoronoi(m, k, sites)
        diagram.cells_built = 0
        rebuilt_cells = 0
        current = list(sites)
        for site in (101, 52, 3, 198, 77):
            diagram.insert_site(site)
            current.append(site)
            rebuilt_cells += len(OrderKVoronoi(m, k, current).cells)
        for site in (5, 100, 195):
            diagram.remove_site(site)
            current.remove(site)
            rebuilt_cells += len(OrderKVoronoi(m, k, current).cells)
        assert diagram.full_rebuilds == 1  # only the constructor
        assert diagram.cells_built < rebuilt_cells / 3, (
            f"incremental built {diagram.cells_built} cells; "
            f"rebuild-every-time builds {rebuilt_cells}"
        )

    def test_rebuild_threshold_fallback(self):
        # A tiny threshold forces the fallback; results must not change.
        strict = OrderKVoronoi(50, 2, [10, 20, 30, 40], rebuild_threshold=0.01)
        strict.insert_site(25)
        fresh = OrderKVoronoi(50, 2, [10, 20, 25, 30, 40])
        assert strict.cells == fresh.cells
        assert strict.full_rebuilds >= 2  # constructor + fallback

    def test_duplicate_insert_rejected(self):
        diagram = OrderKVoronoi(20, 2, [5])
        with pytest.raises(ConfigurationError):
            diagram.insert_site(5)

    def test_missing_remove_rejected(self):
        diagram = OrderKVoronoi(20, 2, [5])
        with pytest.raises(ConfigurationError):
            diagram.remove_site(6)

    def test_transitions_through_trivial_sizes(self):
        """Crossing the n <= k boundary in both directions stays exact."""
        m, k = 30, 3
        diagram = OrderKVoronoi(m, k, [])
        sites: list[int] = []
        for site in (4, 11, 19, 27, 8):
            diagram.insert_site(site)
            sites.append(site)
            assert diagram.cells == OrderKVoronoi(m, k, sites).cells
        for site in (11, 4, 27, 19, 8):
            diagram.remove_site(site)
            sites.remove(site)
            assert diagram.cells == OrderKVoronoi(m, k, sites).cells
        assert diagram.cells == [OrderKVoronoi(m, k, []).cells[0]]


class _ChurningCosts:
    """Mutable cost table standing in for worker churn."""

    def __init__(self, m: int, rng):
        self.m = m
        self._rng = rng
        self._cost: dict[int, float | None] = {}
        self._rel: dict[int, float] = {}
        for slot in range(1, m + 1):
            self.randomize(slot)

    def randomize(self, slot: int) -> None:
        gone = self._rng.uniform() < 0.15
        self._cost[slot] = None if gone else float(self._rng.uniform(0.5, 5.0))
        self._rel[slot] = float(self._rng.uniform(0.6, 1.0))

    def cost(self, slot: int) -> float | None:
        return self._cost[slot]

    def reliability(self, slot: int) -> float:
        return self._rel[slot]


class TestTreeIndexIncremental:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_churned_index_matches_fresh_index(self, seed):
        m, k, ts, budget = 48, 3, 4, 100.0
        rng = np.random.default_rng(seed)
        costs = _ChurningCosts(m, rng)
        ev = TemporalQualityEvaluator(m, k)
        index = TreeIndex(ev, costs, ts=ts)
        executions: list[tuple[int, float]] = []

        def assert_matches_fresh():
            fresh_ev = TemporalQualityEvaluator(m, k)
            for slot, rel in executions:
                fresh_ev.execute(slot, rel)
            fresh = TreeIndex(fresh_ev, costs, ts=ts)
            assert index.find_best(budget) == fresh.find_best(budget)
            assert index.candidate_count == fresh.candidate_count

        for round_id in range(25):
            if rng.uniform() < 0.6:
                # Churn: perturb a random batch of slot costs.
                changed = sorted(
                    int(s)
                    for s in rng.choice(m, size=int(rng.integers(1, 6)), replace=False)
                    + 1
                )
                for slot in changed:
                    costs.randomize(slot)
                index.refresh_slots(changed)
            else:
                best = index.find_best(budget)
                if best is not None:
                    rel = costs.reliability(best.slot)
                    window = ev.affected_window(best.slot)
                    ev.execute(best.slot, rel)
                    executions.append((best.slot, rel))
                    index.refresh_range(*window)
            if round_id % 5 == 4:
                assert_matches_fresh()
        assert_matches_fresh()

    def test_refresh_slots_coalesces_runs(self):
        m = 20
        rng = np.random.default_rng(0)
        costs = _ChurningCosts(m, rng)
        ev = TemporalQualityEvaluator(m, 3)
        counters = OpCounters()
        index = TreeIndex(ev, costs, ts=4, counters=counters)
        assert counters.index_full_builds == 1
        runs = index.refresh_slots([3, 4, 5, 9, 10, 17])
        assert runs == 3
        assert counters.index_incremental_refreshes == 1
        assert index.refresh_slots([]) == 0
        assert index.refresh_slots([0, 21]) == 0  # out of range: ignored


class TestRegistryChurn:
    def _registry(self):
        bbox = BoundingBox.square(10.0)
        workers = [
            Worker(0, {1: Point(1.0, 1.0), 2: Point(2.0, 2.0)}),
            Worker(1, {1: Point(9.0, 9.0)}),
        ]
        return WorkerRegistry(WorkerPool(workers), bbox), bbox

    def test_add_worker_visible_to_built_and_lazy_indexes(self):
        registry, _ = self._registry()
        assert registry.available_count(1) == 2  # builds slot 1 eagerly
        registry.add_worker(Worker(7, {1: Point(0.5, 0.5), 3: Point(4.0, 4.0)}))
        assert registry.available_count(1) == 3  # patched in place
        assert registry.available_count(3) == 1  # lazy build sees it
        hit = registry.nearest_available(Point(0.0, 0.0), 1)
        assert hit is not None and hit[0].worker_id == 7

    def test_add_duplicate_rejected(self):
        registry, _ = self._registry()
        with pytest.raises(ConfigurationError):
            registry.add_worker(Worker(0, {5: Point(0.0, 0.0)}))

    def test_remove_worker_disappears_everywhere(self):
        registry, _ = self._registry()
        assert registry.available_count(1) == 2
        registry.remove_worker(0)
        assert registry.available_count(1) == 1
        assert registry.available_count(2) == 0  # lazy build excludes departed
        assert registry.is_departed(0)
        with pytest.raises(WorkerUnavailableError):
            registry.remove_worker(0)

    def test_departed_consumed_worker_release_does_not_resurrect(self):
        registry, _ = self._registry()
        registry.consume(0, 1)
        registry.remove_worker(0)
        registry.release(0, 1)
        assert registry.available_count(1) == 1  # only worker 1 remains
        assert not registry.is_consumed(0, 1)

    def test_consume_and_release_still_work_for_active_workers(self):
        registry, _ = self._registry()
        registry.consume(1, 1)
        assert registry.available_count(1) == 1
        registry.release(1, 1)
        assert registry.available_count(1) == 2
